package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/detect"
	"hydra/internal/partition"
	"hydra/internal/sim"
	"hydra/internal/stats"
	"hydra/internal/uav"
)

// Fig1Config parametrizes the UAV case study (Sec. IV-A). Zero values select
// the paper's setup.
type Fig1Config struct {
	Cores      []int    // platform sizes; default {2, 4, 8}
	Horizon    sim.Time // observation window; default 500 s
	Attacks    int      // injected attacks per (scheme, M); default 1000
	Seed       int64    // RNG seed for attack sampling
	CDFPoints  int      // resolution of the returned ECDF series; default 50
	CDFRangeMs float64  // x-axis cap of the series; default 50000 ms (paper)
}

func (c *Fig1Config) withDefaults() Fig1Config {
	out := *c
	if len(out.Cores) == 0 {
		out.Cores = []int{2, 4, 8}
	}
	if out.Horizon <= 0 {
		out.Horizon = 500_000 // 500 s in ms
	}
	if out.Attacks <= 0 {
		out.Attacks = 1000
	}
	if out.CDFPoints <= 0 {
		out.CDFPoints = 50
	}
	if out.CDFRangeMs <= 0 {
		out.CDFRangeMs = 50_000
	}
	return out
}

// Fig1Scheme is the measured outcome of one allocation scheme at one M.
type Fig1Scheme struct {
	Scheme        string
	Allocation    *core.Result
	MeanDetection float64      // mean detection latency over detected attacks (ms)
	WorstCase     float64      // analytical worst case over ALL attack instants (ms)
	Censored      int          // attacks with no detecting job inside the horizon
	Misses        int          // deadline misses observed in simulation (should be 0)
	ECDF          *stats.ECDF  // raw detection-time distribution
	Series        [][2]float64 // plot-ready (x, F(x)) pairs
}

// Fig1Row compares the two schemes for one platform size, matching one
// subplot of Fig. 1.
type Fig1Row struct {
	M              int
	Hydra          Fig1Scheme
	SingleCore     Fig1Scheme
	ImprovementPct float64 // (mean_SC - mean_HYDRA)/mean_SC * 100
}

// Fig1Result is the full figure.
type Fig1Result struct {
	Config Fig1Config
	Rows   []Fig1Row
}

// RunFig1 reproduces Fig. 1: for each platform size, allocate the UAV
// security workload with HYDRA and with SingleCore, simulate the resulting
// schedules over the observation window, inject the *same* random attack
// sequence against both, and report detection-time ECDFs plus the mean
// improvement. The paper reports ~19.8 % / 27.2 % / 29.8 % faster mean
// detection for HYDRA at 2 / 4 / 8 cores.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	c := cfg.withDefaults()
	rt := uav.RTTasks()
	sec := uav.SecurityTaskSet()
	out := &Fig1Result{Config: c}

	for _, m := range c.Cores {
		// Identical attack sequence for both schemes: paired comparison.
		rng := stats.SplitRNG(c.Seed, int64(m))
		attacks := detect.SampleAttacks(rng, c.Attacks, len(sec), c.Horizon, 0.8)

		hydraPart, err := core.PartitionForHydra(rt, m, partition.BestFit)
		if err != nil {
			return nil, fmt.Errorf("fig1: M=%d: partition RT tasks: %w", m, err)
		}
		hydraIn, err := core.NewInput(m, rt, hydraPart, sec)
		if err != nil {
			return nil, fmt.Errorf("fig1: M=%d: %w", m, err)
		}
		hydraRes := core.Hydra(hydraIn, core.HydraOptions{})
		hyd, err := measureScheme(hydraIn, hydraRes, attacks, c)
		if err != nil {
			return nil, fmt.Errorf("fig1: M=%d hydra: %w", m, err)
		}

		scIn, err := core.NewSingleCoreInput(m, rt, sec, partition.BestFit)
		if err != nil {
			return nil, fmt.Errorf("fig1: M=%d singlecore: %w", m, err)
		}
		scRes := core.SingleCoreInput(scIn)
		sc, err := measureScheme(scIn, scRes, attacks, c)
		if err != nil {
			return nil, fmt.Errorf("fig1: M=%d singlecore: %w", m, err)
		}

		row := Fig1Row{M: m, Hydra: *hyd, SingleCore: *sc}
		if sc.MeanDetection > 0 {
			row.ImprovementPct = (sc.MeanDetection - hyd.MeanDetection) / sc.MeanDetection * 100
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// measureScheme simulates one allocation and measures the attack campaign.
func measureScheme(in *core.Input, res *core.Result, attacks []detect.Attack, c Fig1Config) (*Fig1Scheme, error) {
	if !res.Schedulable {
		return nil, fmt.Errorf("%s allocation unschedulable: %s", res.Scheme, res.Reason)
	}
	if err := core.Verify(in, res); err != nil {
		return nil, fmt.Errorf("%s allocation failed verification: %w", res.Scheme, err)
	}
	perCore, taskCore, taskIndex, err := BuildSimSpecs(in, res)
	if err != nil {
		return nil, err
	}
	trace, err := sim.SimulateSystem(perCore, c.Horizon)
	if err != nil {
		return nil, err
	}
	campaign, err := detect.NewCampaign(trace, taskCore, taskIndex)
	if err != nil {
		return nil, err
	}
	ds, err := campaign.Run(attacks)
	if err != nil {
		return nil, err
	}
	lats := detect.Latencies(ds)
	e := stats.NewECDF(lats)
	// Analytical worst case: the slowest-detected surface over every
	// possible attack instant, not only the sampled ones.
	var worst float64
	for i := range taskCore {
		jobs := trace.Cores[taskCore[i]].JobsOf(taskIndex[i])
		if w, ok := detect.WorstCaseDetection(jobs); ok && w > worst {
			worst = w
		}
	}
	return &Fig1Scheme{
		Scheme:        res.Scheme,
		Allocation:    res,
		MeanDetection: e.Mean(),
		WorstCase:     worst,
		Censored:      len(ds) - len(lats),
		Misses:        trace.TotalMisses(),
		ECDF:          e,
		Series:        e.Series(c.CDFRangeMs, c.CDFPoints),
	}, nil
}
