package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hydra/internal/core"
	"hydra/internal/engine"
	"hydra/internal/online"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/taskgen"
)

// OnlineConfig parametrizes the dynamic-workload churn sweep — a scenario
// axis the paper never had: long-lived systems whose security tasksets churn
// (arrivals and departures) while the system runs, served by the incremental
// admission of internal/online. Zero values select: M = 2, the "hydra"
// scheme, base utilizations {0.3, 0.5} of M, departure rate 0.25, 120 churn
// operations over 10 independent system draws per point.
type OnlineConfig struct {
	M int
	// Schemes are the online-admissible scheme names to sweep (see
	// online.SupportedSchemes).
	Schemes []string
	// UtilFracs are the base-taskset total utilizations, as fractions of M.
	UtilFracs []float64
	// DepartRates are the per-operation probabilities that a previously
	// admitted dynamic task departs instead of a new one arriving.
	DepartRates []float64
	// Ops is the number of churn operations applied to each system.
	Ops int
	// SystemsPerCell is the number of independent system draws per
	// (scheme, utilization, rate) point.
	SystemsPerCell int
	// ColdEvery times a cold full allocation of the current taskset once
	// every this many admission attempts (the incremental-vs-cold latency
	// comparison). Zero selects 25.
	ColdEvery int
	Seed      int64
	Heuristic partition.Heuristic
	Workers   int
	// ResultsVersion pins the RNG family behind the system draws and churn
	// sequences (stats.RNGVersion: 1 = historical math/rand, 2 =
	// SplitMix64). Absent selects the default for new runs; inside a
	// campaign it must match the manifest's pinned version.
	ResultsVersion int `json:"results_version,omitempty"`
}

func (c *OnlineConfig) withDefaults() OnlineConfig {
	out := *c
	if out.M <= 0 {
		out.M = 2
	}
	if len(out.Schemes) == 0 {
		out.Schemes = []string{"hydra"}
	}
	if len(out.UtilFracs) == 0 {
		out.UtilFracs = []float64{0.3, 0.5}
	}
	if len(out.DepartRates) == 0 {
		out.DepartRates = []float64{0.25}
	}
	if out.Ops <= 0 {
		out.Ops = 120
	}
	if out.SystemsPerCell <= 0 {
		out.SystemsPerCell = 10
	}
	if out.ColdEvery <= 0 {
		out.ColdEvery = 25
	}
	return out
}

// OnlinePoint aggregates one (scheme, base utilization, departure rate)
// churn sweep point. Every field is deterministic per seed — wall-clock
// latencies live in the result's separate Timing section, so this part of
// the result document is byte-stable across runs and machines.
type OnlinePoint struct {
	Scheme     string
	TotalUtil  float64 // base-taskset utilization (absolute, = frac * M)
	DepartRate float64
	Systems    int // draws whose base taskset produced a live system
	Infeasible int // draws rejected at creation (base taskset not admittable)
	Attempts   int // dynamic admission attempts over all live systems
	Admitted   int
	Rejected   int
	Removed    int
	// ColdAllocations counts the timed cold full allocations (one every
	// ColdEvery attempts) — the analysis-operation count behind the cold
	// side of the timing comparison.
	ColdAllocations int
	// AcceptanceRatio is Admitted/Attempts.
	AcceptanceRatio float64
}

// OnlineTiming is one point's wall-clock latency summary — machine-relative
// by nature (it varies run to run and host to host), which is why it is kept
// out of OnlinePoint. The identity fields mirror the Points entry at the
// same index.
type OnlineTiming struct {
	Scheme     string
	TotalUtil  float64
	DepartRate float64
	// IncrementalMeanUS is the mean wall-clock microseconds of one
	// incremental AddSecurity admission on the warm system state.
	IncrementalMeanUS float64
	// ColdMeanUS is the mean wall-clock microseconds of a cold full
	// allocation (partition + scheme) of the same system's current taskset,
	// sampled every ColdEvery attempts.
	ColdMeanUS float64
	// SpeedupX is ColdMeanUS / IncrementalMeanUS (0 when either is missing).
	SpeedupX float64
}

// OnlineResult is the churn sweep's result document. ResultsVersion records
// the RNG family the draws came from; Points is the seed-deterministic
// (byte-stable) section; Timing is the machine-relative section,
// index-aligned with Points.
type OnlineResult struct {
	ResultsVersion int            `json:"results_version"`
	Points         []OnlinePoint  `json:"points"`
	Timing         []OnlineTiming `json:"timing"`
}

// onlineCellResult is one (scheme, util, rate, draw) cell outcome; exported
// fields so campaign checkpoints round-trip it through JSON.
type onlineCellResult struct {
	Created  bool
	Attempts int
	Admitted int
	Rejected int
	Removed  int
	IncNS    int64
	ColdNS   int64
	ColdOps  int
}

// RunOnline executes the churn sweep.
func RunOnline(cfg OnlineConfig) (*OnlineResult, error) {
	return runOnline(context.Background(), cfg, Hooks{})
}

// runOnline is the campaign-hooked driver behind RunOnline and the "online"
// spec.
func runOnline(ctx context.Context, cfg OnlineConfig, hooks Hooks) (*OnlineResult, error) {
	c := cfg.withDefaults()
	ver, err := resolveResultsVersion("online", c.ResultsVersion, hooks)
	if err != nil {
		return nil, err
	}
	c.ResultsVersion = int(ver)
	for _, name := range c.Schemes {
		if _, err := core.Resolve(name); err != nil {
			return nil, fmt.Errorf("online: %w", err)
		}
	}
	type cell struct {
		s, u, r, t int
	}
	var cells []cell
	for s := range c.Schemes {
		for u := range c.UtilFracs {
			for r := range c.DepartRates {
				for t := 0; t < c.SystemsPerCell; t++ {
					cells = append(cells, cell{s: s, u: u, r: r, t: t})
				}
			}
		}
	}
	if hooks.Total != nil {
		hooks.Total(len(cells))
	}

	results, err := engine.Run(ctx, cells, func(ctx context.Context, idx int, rng *rand.Rand, cl cell) (onlineCellResult, error) {
		return runOnlineCell(c, c.Schemes[cl.s], c.UtilFracs[cl.u], c.DepartRates[cl.r], rng)
	}, campaignEngineOptions[onlineCellResult](engine.Options{
		Workers: c.Workers,
		Seed:    c.Seed,
		// Stream by (scheme, util, rate, draw) so the draws stay stable when
		// any sweep axis is resized.
		Stream: func(idx int) int64 {
			cl := cells[idx]
			return int64(cl.s)<<48 | int64(cl.u)<<40 | int64(cl.r)<<32 | int64(cl.t)
		},
		ResultsVersion: ver,
	}, hooks))
	if err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}

	out := &OnlineResult{ResultsVersion: int(ver)}
	i := 0
	for s := range c.Schemes {
		for u := range c.UtilFracs {
			for r := range c.DepartRates {
				pt := OnlinePoint{
					Scheme:     c.Schemes[s],
					TotalUtil:  c.UtilFracs[u] * float64(c.M),
					DepartRate: c.DepartRates[r],
				}
				tm := OnlineTiming{
					Scheme:     pt.Scheme,
					TotalUtil:  pt.TotalUtil,
					DepartRate: pt.DepartRate,
				}
				for t := 0; t < c.SystemsPerCell; t++ {
					res := results[i]
					i++
					if !res.Created {
						pt.Infeasible++
						continue
					}
					pt.Systems++
					pt.Attempts += res.Attempts
					pt.Admitted += res.Admitted
					pt.Rejected += res.Rejected
					pt.Removed += res.Removed
					pt.ColdAllocations += res.ColdOps
					tm.IncrementalMeanUS += float64(res.IncNS)
					tm.ColdMeanUS += float64(res.ColdNS)
				}
				if pt.Attempts > 0 {
					pt.AcceptanceRatio = float64(pt.Admitted) / float64(pt.Attempts)
					tm.IncrementalMeanUS /= float64(pt.Attempts) * 1e3
				}
				if pt.ColdAllocations > 0 {
					tm.ColdMeanUS /= float64(pt.ColdAllocations) * 1e3
				}
				if tm.IncrementalMeanUS > 0 && tm.ColdMeanUS > 0 {
					tm.SpeedupX = tm.ColdMeanUS / tm.IncrementalMeanUS
				}
				out.Points = append(out.Points, pt)
				out.Timing = append(out.Timing, tm)
			}
		}
	}
	return out, nil
}

// runOnlineCell churns one system draw: create from a base workload, then
// alternate dynamic security-task arrivals (incremental admission, timed)
// with departures of previously admitted dynamic tasks, timing a cold full
// allocation of the running taskset every ColdEvery attempts for comparison.
func runOnlineCell(c OnlineConfig, scheme string, utilFrac, rate float64, rng *rand.Rand) (onlineCellResult, error) {
	var res onlineCellResult
	var sys *online.System
	// A draw can be unsplittable or unschedulable; both count as an
	// infeasible base system (like fig2's generated filter). Retries consume
	// the cell's own stream, so they stay deterministic.
	for attempt := 0; attempt < 10 && sys == nil; attempt++ {
		w, err := taskgen.Generate(taskgen.DefaultParams(c.M, utilFrac*float64(c.M)), rng)
		if err != nil {
			continue
		}
		s, err := online.NewSystem("cell", scheme, c.Heuristic, c.M, w.RT, nil, w.Sec)
		if err != nil {
			continue
		}
		sys = s
	}
	if sys == nil {
		return res, nil
	}
	res.Created = true

	allocs, err := core.Resolve(scheme)
	if err != nil {
		return res, err
	}
	var dynamic []string
	for op := 0; op < c.Ops; op++ {
		if len(dynamic) > 0 && rng.Float64() < rate {
			k := rng.Intn(len(dynamic))
			if _, err := sys.Remove(dynamic[k]); err != nil {
				return res, err
			}
			dynamic = append(dynamic[:k], dynamic[k+1:]...)
			res.Removed++
			continue
		}
		tdes := 1000 + 2000*rng.Float64()
		task := rts.SecurityTask{
			Name: fmt.Sprintf("dyn%04d", op),
			C:    (0.002 + 0.03*rng.Float64()) * tdes,
			TDes: tdes,
			TMax: 10 * tdes,
		}
		start := time.Now() //lint:allow detpath feeds IncNS, a Timing-section field excluded from deterministic points
		_, err := sys.AddSecurity(task)
		res.IncNS += time.Since(start).Nanoseconds() //lint:allow detpath machine-relative timing, not part of the deterministic result
		res.Attempts++
		switch {
		case err == nil:
			res.Admitted++
			dynamic = append(dynamic, task.Name)
		default:
			var rej *online.Rejection
			if !errors.As(err, &rej) {
				return res, err
			}
			res.Rejected++
		}
		if res.Attempts%c.ColdEvery == 0 {
			snap := sys.Snapshot()
			rt := make([]rts.RTTask, len(snap.RT))
			for i := range snap.RT {
				rt[i] = snap.RT[i].Task
			}
			sec := make([]rts.SecurityTask, len(snap.Sec))
			for i := range snap.Sec {
				sec[i] = snap.Sec[i].Task
			}
			start := time.Now() //lint:allow detpath feeds ColdNS, a Timing-section field excluded from deterministic points
			if p, err := partition.PartitionRT(rt, c.M, c.Heuristic); err == nil {
				if in, err := core.NewInput(c.M, rt, p.CoreOf, sec); err == nil {
					_ = allocs[0].Allocate(in)
				}
			}
			res.ColdNS += time.Since(start).Nanoseconds() //lint:allow detpath machine-relative timing, not part of the deterministic result
			res.ColdOps++
		}
	}
	return res, nil
}
