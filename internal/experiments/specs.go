// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sec. IV): Table I (the security workload), Fig. 1
// (detection-time ECDFs on the UAV case study), Fig. 2 (acceptance-ratio
// improvement on synthetic tasksets) and Fig. 3 (tightness gap to the
// optimal assignment). Each driver is deterministic given its seed and
// returns plot-ready rows/series matching what the paper reports.
package experiments

import (
	"fmt"
	"sort"

	"hydra/internal/core"
	"hydra/internal/rts"
	"hydra/internal/sim"
)

// secPrioBase separates the security priority band from the real-time band:
// every security task has a numerically larger (= lower) priority than every
// real-time task, implementing opportunistic execution.
const secPrioBase = 1 << 20

// BuildSimSpecs lowers an allocation result onto per-core simulator task
// lists. Real-time tasks get rate-monotonic priorities (global rank order);
// security tasks sit in a strictly lower band, ordered by the paper's
// smaller-TMax-first rule. It also returns, for each security task (input
// order), its core and its spec index within that core — the mapping a
// detection campaign needs. Like core.Verify, it honors the RT partition the
// result was actually solved against (Result.RTPartition), so schemes that
// repartition internally simulate correctly.
func BuildSimSpecs(in *core.Input, res *core.Result) ([][]sim.TaskSpec, []int, []int, error) {
	in = core.EffectiveInput(in, res)
	if !res.Schedulable {
		return nil, nil, nil, fmt.Errorf("experiments: cannot simulate unschedulable result (%s)", res.Reason)
	}
	if len(res.Assignment) != len(in.Sec) || len(res.Periods) != len(in.Sec) {
		return nil, nil, nil, fmt.Errorf("experiments: result does not cover the security taskset")
	}

	// Global RM ranks for real-time tasks.
	rtRank := make([]int, len(in.RT))
	order := make([]int, len(in.RT))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := in.RT[order[a]], in.RT[order[b]]
		if ta.T != tb.T {
			return ta.T < tb.T
		}
		return ta.Name < tb.Name
	})
	for rank, i := range order {
		rtRank[i] = rank
	}

	// Security ranks by TMax (paper's priority rule).
	secOrder := make([]int, len(in.Sec))
	for i := range secOrder {
		secOrder[i] = i
	}
	sort.SliceStable(secOrder, func(a, b int) bool {
		sa, sb := in.Sec[secOrder[a]], in.Sec[secOrder[b]]
		if sa.TMax != sb.TMax {
			return sa.TMax < sb.TMax
		}
		return sa.Name < sb.Name
	})
	secRank := make([]int, len(in.Sec))
	for rank, i := range secOrder {
		secRank[i] = rank
	}

	perCore := make([][]sim.TaskSpec, in.M)
	for i, t := range in.RT {
		c := in.RTPartition[i]
		perCore[c] = append(perCore[c], sim.TaskSpec{
			Name: t.Name, C: t.C, T: t.T, Prio: rtRank[i], Kind: sim.KindRT,
		})
	}
	taskCore := make([]int, len(in.Sec))
	taskIndex := make([]int, len(in.Sec))
	for i, s := range in.Sec {
		c := res.Assignment[i]
		taskCore[i] = c
		taskIndex[i] = len(perCore[c])
		perCore[c] = append(perCore[c], sim.TaskSpec{
			Name: s.Name, C: s.C, T: res.Periods[i],
			Prio: secPrioBase + secRank[i], Kind: sim.KindSecurity,
		})
	}
	return perCore, taskCore, taskIndex, nil
}

// rtTasksTotalUtil is a tiny shared helper for reporting.
func rtTasksTotalUtil(tasks []rts.RTTask) float64 { return rts.TotalRTUtilization(tasks) }
