package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hydra/internal/stats"
)

// A config that explicitly pins a version different from the campaign
// manifest's pinned version is an explicit error — resubmitting an old
// config into a new campaign must never silently change its streams.
func TestConfigVersionConflictsWithCampaign(t *testing.T) {
	spec, err := ResolveSpec("fig2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := json.RawMessage(`{"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.5, "Seed": 3, "results_version": 1}`)
	_, err = spec.Run(context.Background(), cfg, Hooks{ResultsVersion: stats.RNGv2})
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting versions: err = %v, want explicit conflict error", err)
	}
	// Agreement is fine, and the campaign's pin alone also routes.
	if _, err := spec.Run(context.Background(), cfg, Hooks{ResultsVersion: stats.RNGv1}); err != nil {
		t.Fatalf("matching versions must run: %v", err)
	}
	if _, err := spec.Run(context.Background(), cfg, Hooks{}); err != nil {
		t.Fatalf("config-only pin must run: %v", err)
	}
}

// An unknown version — whether pinned by the config or by the campaign — is
// rejected before any cell runs.
func TestUnknownVersionRejected(t *testing.T) {
	spec, err := ResolveSpec("fig2")
	if err != nil {
		t.Fatal(err)
	}
	bad := json.RawMessage(`{"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.5, "Seed": 3, "results_version": 7}`)
	if _, err := spec.Run(context.Background(), bad, Hooks{}); err == nil || !strings.Contains(err.Error(), "results_version") {
		t.Fatalf("config version 7: err = %v, want explicit results_version error", err)
	}
	good := json.RawMessage(`{"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.5, "Seed": 3}`)
	if _, err := spec.Run(context.Background(), good, Hooks{ResultsVersion: 7}); err == nil || !strings.Contains(err.Error(), "results_version") {
		t.Fatalf("campaign version 7: err = %v, want explicit results_version error", err)
	}
}

// The campaign pin routes the same generator the config pin does: pinning v1
// via Hooks reproduces the draws of pinning v1 in the config.
func TestCampaignPinMatchesConfigPin(t *testing.T) {
	viaConfig, err := RunFig2(Fig2Config{M: 2, TasksetsPerPoint: 2, UtilStepFrac: 0.5, Seed: 3, ResultsVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ResolveSpec("fig2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := spec.Run(context.Background(),
		json.RawMessage(`{"M": 2, "TasksetsPerPoint": 2, "UtilStepFrac": 0.5, "Seed": 3}`),
		Hooks{ResultsVersion: stats.RNGv1})
	if err != nil {
		t.Fatal(err)
	}
	res := got.(*Fig2Result)
	if res.ResultsVersion != 1 {
		t.Fatalf("campaign-pinned run recorded results_version %d, want 1", res.ResultsVersion)
	}
	if !reflect.DeepEqual(res.Points, viaConfig) {
		t.Fatal("campaign-pinned v1 drew differently from config-pinned v1")
	}
}
