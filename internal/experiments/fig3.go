package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hydra/internal/core"
	"hydra/internal/engine"
	"hydra/internal/partition"
	"hydra/internal/taskgen"
)

// Fig3Config parametrizes the HYDRA-vs-optimal comparison (Sec. IV-B.2,
// Fig. 3): M = 2 cores, NS in [2, 6] security tasks, and the remaining
// parameters as in Fig. 2. The paper observes a cumulative-tightness gap of
// zero at low/medium utilization growing to at most ~22 %.
type Fig3Config struct {
	M                int     // default 2 (paper)
	NSMin, NSMax     int     // default [2, 6] (paper)
	TasksetsPerPoint int     // default 50
	UtilStepFrac     float64 // default 0.05 (of M)
	Seed             int64
	// Scheme names the allocator measured against the optimal baseline
	// (registry name, see core.Names); default "hydra".
	Scheme string
	// RefineJointGP refines each per-core period vector of the optimal
	// baseline with the signomial sequential-GP maximizer (slower, slightly
	// tighter optimum). Off by default; the assignment enumeration is the
	// dominant effect.
	RefineJointGP bool
	// Workers bounds the parallel grid workers; 0 selects GOMAXPROCS.
	Workers int
	// ResultsVersion pins the RNG family behind the taskset draws
	// (stats.RNGVersion: 1 = historical math/rand, 2 = SplitMix64). Absent
	// selects the default for new runs; inside a campaign it must match the
	// manifest's pinned version.
	ResultsVersion int `json:"results_version,omitempty"`
}

func (c *Fig3Config) withDefaults() Fig3Config {
	out := *c
	if out.M <= 0 {
		out.M = 2
	}
	if out.NSMin <= 0 {
		out.NSMin = 2
	}
	if out.NSMax < out.NSMin {
		out.NSMax = 6
	}
	if out.TasksetsPerPoint <= 0 {
		out.TasksetsPerPoint = 50
	}
	if out.UtilStepFrac <= 0 {
		out.UtilStepFrac = 0.05
	}
	if out.Scheme == "" {
		out.Scheme = "hydra"
	}
	return out
}

// Fig3Point is one utilization level of the figure.
type Fig3Point struct {
	TotalUtil  float64
	Compared   int     // tasksets where both the scheme and OPT were schedulable
	MeanGapPct float64 // mean (eta_OPT - eta_scheme)/eta_OPT * 100
	MaxGapPct  float64
}

// RunFig3 reproduces Fig. 3: for each utilization level, draw small
// workloads, run the configured scheme and the exhaustive optimal baseline,
// and average the cumulative-tightness gap over instances both schemes
// schedule. The grid runs on the parallel engine; results are identical for
// any worker count.
func RunFig3(cfg Fig3Config) ([]Fig3Point, error) {
	return RunFig3Ctx(context.Background(), cfg)
}

// RunFig3Ctx is RunFig3 with cancellation.
func RunFig3Ctx(ctx context.Context, cfg Fig3Config) ([]Fig3Point, error) {
	r, err := runFig3(ctx, cfg, Hooks{})
	if err != nil {
		return nil, err
	}
	return r.Points, nil
}

// Fig3Result is the "fig3" campaign's result document: the
// results_version the draws came from plus the per-utilization points. The
// rest of the config is deliberately not echoed back so results stay
// byte-identical across settings (like Workers) that cannot move a draw.
type Fig3Result struct {
	ResultsVersion int `json:"results_version"`
	Points         []Fig3Point
}

// fig3CellResult is one taskset draw's outcome; exported fields let campaign
// checkpoints round-trip it through JSON.
type fig3CellResult struct {
	Compared bool
	Gap      float64
}

// runFig3 is the campaign-hooked driver behind RunFig3Ctx and the "fig3"
// spec.
func runFig3(ctx context.Context, cfg Fig3Config, hooks Hooks) (*Fig3Result, error) {
	c := cfg.withDefaults()
	ver, err := resolveResultsVersion("fig3", c.ResultsVersion, hooks)
	if err != nil {
		return nil, err
	}
	c.ResultsVersion = int(ver)
	allocs, err := core.Resolve(c.Scheme)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	alloc := allocs[0]
	optimal := core.NewOptimalAllocator(core.OptimalOptions{RefineJointGP: c.RefineJointGP})

	type cell struct {
		k, t int
		util float64
	}
	mf := float64(c.M)
	steps := int(0.975/c.UtilStepFrac + 1e-9)
	cells := make([]cell, 0, steps*c.TasksetsPerPoint)
	for k := 1; k <= steps; k++ {
		util := c.UtilStepFrac * float64(k) * mf
		for t := 0; t < c.TasksetsPerPoint; t++ {
			cells = append(cells, cell{k: k, t: t, util: util})
		}
	}
	if hooks.Total != nil {
		hooks.Total(len(cells))
	}

	results, err := engine.Run(ctx, cells, func(ctx context.Context, idx int, rng *rand.Rand, cl cell) (fig3CellResult, error) {
		params := taskgen.DefaultParams(c.M, cl.util)
		params.NS = c.NSMin + rng.Intn(c.NSMax-c.NSMin+1)
		w, err := taskgen.Generate(params, rng)
		if err != nil {
			return fig3CellResult{}, nil
		}
		part, err := partition.PartitionRT(w.RT, c.M, partition.BestFit)
		if err != nil {
			return fig3CellResult{}, nil
		}
		in, err := core.NewInput(c.M, w.RT, part.CoreOf, w.Sec)
		if err != nil {
			return fig3CellResult{}, err
		}
		hyd := alloc.Allocate(in)
		opt := optimal.Allocate(in)
		gap, ok := core.TightnessGap(opt, hyd)
		if !ok {
			return fig3CellResult{}, nil
		}
		return fig3CellResult{Compared: true, Gap: gap}, nil
	}, campaignEngineOptions[fig3CellResult](engine.Options{
		Workers:        c.Workers,
		Seed:           c.Seed + 1000, // historical stream offset of the serial driver
		Stream:         func(idx int) int64 { return int64(cells[idx].k)<<32 | int64(cells[idx].t) },
		ResultsVersion: ver,
	}, hooks))
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}

	points := make([]Fig3Point, 0, steps)
	for k := 1; k <= steps; k++ {
		pt := Fig3Point{TotalUtil: c.UtilStepFrac * float64(k) * mf}
		var sum float64
		for t := 0; t < c.TasksetsPerPoint; t++ {
			r := results[(k-1)*c.TasksetsPerPoint+t]
			if !r.Compared {
				continue
			}
			pt.Compared++
			sum += r.Gap
			if r.Gap > pt.MaxGapPct {
				pt.MaxGapPct = r.Gap
			}
		}
		if pt.Compared > 0 {
			pt.MeanGapPct = sum / float64(pt.Compared)
		}
		points = append(points, pt)
	}
	return &Fig3Result{ResultsVersion: int(ver), Points: points}, nil
}
