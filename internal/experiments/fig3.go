package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// Fig3Config parametrizes the HYDRA-vs-optimal comparison (Sec. IV-B.2,
// Fig. 3): M = 2 cores, NS in [2, 6] security tasks, and the remaining
// parameters as in Fig. 2. The paper observes a cumulative-tightness gap of
// zero at low/medium utilization growing to at most ~22 %.
type Fig3Config struct {
	M                int     // default 2 (paper)
	NSMin, NSMax     int     // default [2, 6] (paper)
	TasksetsPerPoint int     // default 50
	UtilStepFrac     float64 // default 0.05 (of M)
	Seed             int64
	// RefineJointGP refines each per-core period vector of the optimal
	// baseline with the signomial sequential-GP maximizer (slower, slightly
	// tighter optimum). Off by default; the assignment enumeration is the
	// dominant effect.
	RefineJointGP bool
}

func (c *Fig3Config) withDefaults() Fig3Config {
	out := *c
	if out.M <= 0 {
		out.M = 2
	}
	if out.NSMin <= 0 {
		out.NSMin = 2
	}
	if out.NSMax < out.NSMin {
		out.NSMax = 6
	}
	if out.TasksetsPerPoint <= 0 {
		out.TasksetsPerPoint = 50
	}
	if out.UtilStepFrac <= 0 {
		out.UtilStepFrac = 0.05
	}
	return out
}

// Fig3Point is one utilization level of the figure.
type Fig3Point struct {
	TotalUtil  float64
	Compared   int     // tasksets where both HYDRA and OPT were schedulable
	MeanGapPct float64 // mean (eta_OPT - eta_HYDRA)/eta_OPT * 100
	MaxGapPct  float64
}

// RunFig3 reproduces Fig. 3: for each utilization level, draw small
// workloads, run HYDRA and the exhaustive optimal baseline, and average the
// cumulative-tightness gap over instances both schemes schedule.
func RunFig3(cfg Fig3Config) ([]Fig3Point, error) {
	c := cfg.withDefaults()
	var points []Fig3Point
	mf := float64(c.M)
	steps := int(0.975/c.UtilStepFrac + 1e-9)
	for k := 1; k <= steps; k++ {
		util := c.UtilStepFrac * float64(k) * mf
		pt := Fig3Point{TotalUtil: util}
		var sum float64
		for t := 0; t < c.TasksetsPerPoint; t++ {
			rng := stats.SplitRNG(c.Seed+1000, int64(k)<<32|int64(t))
			params := taskgen.DefaultParams(c.M, util)
			params.NS = c.NSMin + rng.Intn(c.NSMax-c.NSMin+1)
			w, err := taskgen.Generate(params, rng)
			if err != nil {
				continue
			}
			part, err := partition.PartitionRT(w.RT, c.M, partition.BestFit)
			if err != nil {
				continue
			}
			in, err := core.NewInput(c.M, w.RT, part.CoreOf, w.Sec)
			if err != nil {
				return nil, fmt.Errorf("fig3: %w", err)
			}
			hyd := core.Hydra(in, core.HydraOptions{})
			opt := core.Optimal(in, core.OptimalOptions{RefineJointGP: c.RefineJointGP})
			gap, ok := core.TightnessGap(opt, hyd)
			if !ok {
				continue
			}
			pt.Compared++
			sum += gap
			if gap > pt.MaxGapPct {
				pt.MaxGapPct = gap
			}
		}
		if pt.Compared > 0 {
			pt.MeanGapPct = sum / float64(pt.Compared)
		}
		points = append(points, pt)
	}
	return points, nil
}
