package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hydra/internal/engine"
	"hydra/internal/stats"
)

// Hooks carries the campaign seams of a spec run: total-cell announcement,
// per-cell checkpointing, and checkpoint replay. The zero value disables all
// three, which is a plain uninterrupted run. Cell results cross the seam as
// their JSON encoding so a campaign store can persist them without knowing
// the spec's internal result types; every spec's cell results round-trip
// through JSON losslessly, which is what makes a resumed campaign
// byte-identical to an uninterrupted one.
type Hooks struct {
	// Total, when non-nil, is called once with the grid's cell count before
	// any cell runs.
	Total func(cells int)
	// OnCell, when non-nil, receives the JSON encoding of each freshly
	// evaluated cell result. Calls may come concurrently from engine
	// workers.
	OnCell func(idx int, encoded []byte)
	// Resume, when non-nil, supplies the JSON encoding of an already
	// completed cell; such cells are replayed instead of re-evaluated.
	Resume func(idx int) ([]byte, bool)
	// ResultsVersion, when non-zero, is the RNG version pinned by the
	// campaign manifest the spec runs under (stats.RNGVersion). A resumed
	// campaign replays under the version that produced its checkpoints; a
	// config that explicitly pins a different version is an error, never a
	// silent stream change. Zero leaves the choice to the spec config
	// (absent there too selects stats.DefaultResultsVersion).
	ResultsVersion stats.RNGVersion
}

// Spec is one registered experiment campaign: a named runner over a JSON
// config document. Mirroring the allocator registry, specs are selected by
// name (RegisterSpec / LookupSpec / SpecNames) so services and CLIs can host
// any experiment uniformly. Run returns the experiment's plot-ready result
// (the same value the figure drivers return), which marshals to the
// campaign's result document.
type Spec interface {
	// Name returns the registry key, e.g. "fig2".
	Name() string
	// Run decodes config (strict JSON; empty selects the paper's defaults)
	// and executes the experiment with the given campaign hooks.
	Run(ctx context.Context, config json.RawMessage, h Hooks) (any, error)
}

// specFunc adapts a function to the Spec interface.
type specFunc struct {
	name string
	run  func(ctx context.Context, config json.RawMessage, h Hooks) (any, error)
}

func (s specFunc) Name() string { return s.name }
func (s specFunc) Run(ctx context.Context, config json.RawMessage, h Hooks) (any, error) {
	return s.run(ctx, config, h)
}

var (
	specMu   sync.RWMutex
	specRegn = map[string]Spec{}
	// specNames mirrors specRegn's keys in sorted order, maintained at
	// registration time so no reader ever iterates the map: catalogue order
	// is deterministic by construction, not by a sort bolted onto each call.
	specNames []string
)

// RegisterSpec adds a spec to the global registry. Like core.Register it
// panics on an empty name or a duplicate: specs are identities, and silently
// replacing one would corrupt every campaign that selects it by name.
func RegisterSpec(s Spec) {
	name := s.Name()
	if name == "" {
		panic("experiments: RegisterSpec with empty spec name")
	}
	specMu.Lock()
	defer specMu.Unlock()
	if _, dup := specRegn[name]; dup {
		panic(fmt.Sprintf("experiments: RegisterSpec called twice for spec %q", name))
	}
	specRegn[name] = s
	i := sort.SearchStrings(specNames, name)
	specNames = append(specNames, "")
	copy(specNames[i+1:], specNames[i:])
	specNames[i] = name
}

// LookupSpec returns the registered spec with the given name.
func LookupSpec(name string) (Spec, bool) {
	specMu.RLock()
	defer specMu.RUnlock()
	s, ok := specRegn[name]
	return s, ok
}

// ResolveSpec is LookupSpec with a helpful error listing the catalogue; it
// is the parsing seam for experiment names arriving from flags or requests.
func ResolveSpec(name string) (Spec, error) {
	s, ok := LookupSpec(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (available: %s)", name, strings.Join(SpecNames(), ", "))
	}
	return s, nil
}

// SpecNames returns all registered spec names, sorted.
func SpecNames() []string {
	specMu.RLock()
	defer specMu.RUnlock()
	out := make([]string, len(specNames))
	copy(out, specNames)
	return out
}

// decodeSpecConfig strictly parses a spec's JSON config; empty input selects
// the zero config (the paper's defaults throughout).
func decodeSpecConfig[T any](raw json.RawMessage) (T, error) {
	var cfg T
	if len(raw) == 0 || string(raw) == "null" {
		return cfg, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("experiments: parse config: %w", err)
	}
	return cfg, nil
}

// resolveResultsVersion reconciles a spec config's results_version with the
// campaign manifest's (Hooks.ResultsVersion), for spec name in errors. The
// rules, in order:
//
//   - an explicit config version must parse, and must equal a non-zero
//     manifest version — a mismatch is an explicit error (the manifest names
//     the streams the checkpoints were drawn from; changing it mid-campaign
//     would silently mix generators);
//   - an absent config version defers to the manifest's;
//   - absent everywhere selects stats.DefaultResultsVersion (new direct runs
//     get the fast generator).
func resolveResultsVersion(name string, cfgVersion int, h Hooks) (stats.RNGVersion, error) {
	if cfgVersion != 0 {
		v, err := stats.ParseResultsVersion(cfgVersion)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		if h.ResultsVersion != 0 && h.ResultsVersion != v {
			return 0, fmt.Errorf("%s: config results_version %s conflicts with the campaign's pinned %s", name, v, h.ResultsVersion)
		}
		return v, nil
	}
	if h.ResultsVersion != 0 {
		if _, err := stats.ParseResultsVersion(int(h.ResultsVersion)); err != nil {
			return 0, fmt.Errorf("%s: campaign: %w", name, err)
		}
		return h.ResultsVersion, nil
	}
	return stats.DefaultResultsVersion, nil
}

// campaignEngineOptions wires the byte-level checkpoint seam of Hooks into
// typed engine options for cell-result type R. Corrupt checkpoint entries
// (undecodable bytes) are simply recomputed — determinism makes recomputation
// indistinguishable from replay.
func campaignEngineOptions[R any](opts engine.Options, h Hooks) engine.Options {
	if h.OnCell != nil {
		onCell := h.OnCell
		opts.OnCell = func(idx int, result any) {
			b, err := json.Marshal(result.(R))
			if err != nil {
				return // cell results are plain data; Marshal cannot fail on them
			}
			onCell(idx, b)
		}
	}
	if h.Resume != nil {
		resume := h.Resume
		opts.Precomputed = func(idx int) (any, bool) {
			b, ok := resume(idx)
			if !ok {
				return nil, false
			}
			var r R
			if err := json.Unmarshal(b, &r); err != nil {
				return nil, false
			}
			return r, true
		}
	}
	return opts
}

// The experiment catalogue: every table and figure of the paper's
// evaluation, runnable by name with a JSON config.
func init() {
	RegisterSpec(specFunc{name: "table1", run: func(ctx context.Context, config json.RawMessage, h Hooks) (any, error) {
		if _, err := decodeSpecConfig[struct{}](config); err != nil {
			return nil, err
		}
		if h.Total != nil {
			h.Total(1)
		}
		rows := Table1()
		if h.OnCell != nil {
			if b, err := json.Marshal(rows); err == nil {
				h.OnCell(0, b)
			}
		}
		return rows, nil
	}})
	RegisterSpec(specFunc{name: "fig1", run: func(ctx context.Context, config json.RawMessage, h Hooks) (any, error) {
		cfg, err := decodeSpecConfig[Fig1Config](config)
		if err != nil {
			return nil, err
		}
		return runFig1(ctx, cfg, h)
	}})
	RegisterSpec(specFunc{name: "fig2", run: func(ctx context.Context, config json.RawMessage, h Hooks) (any, error) {
		cfg, err := decodeSpecConfig[Fig2Config](config)
		if err != nil {
			return nil, err
		}
		return runFig2(ctx, cfg, h)
	}})
	RegisterSpec(specFunc{name: "fig3", run: func(ctx context.Context, config json.RawMessage, h Hooks) (any, error) {
		cfg, err := decodeSpecConfig[Fig3Config](config)
		if err != nil {
			return nil, err
		}
		return runFig3(ctx, cfg, h)
	}})
	RegisterSpec(specFunc{name: "ablation", run: func(ctx context.Context, config json.RawMessage, h Hooks) (any, error) {
		cfg, err := decodeSpecConfig[AblationConfig](config)
		if err != nil {
			return nil, err
		}
		return runAblation(ctx, cfg, h)
	}})
	RegisterSpec(specFunc{name: "online", run: func(ctx context.Context, config json.RawMessage, h Hooks) (any, error) {
		cfg, err := decodeSpecConfig[OnlineConfig](config)
		if err != nil {
			return nil, err
		}
		return runOnline(ctx, cfg, h)
	}})
}
