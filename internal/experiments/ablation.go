package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
)

// AblationConfig parametrizes the design-choice sweep of DESIGN.md §5: a
// grid over HYDRA commitment policies and real-time partition heuristics,
// measured by acceptance ratio and mean per-task tightness at a fixed
// utilization level.
type AblationConfig struct {
	M                int
	UtilFrac         float64 // total utilization as a fraction of M; default 0.8
	TasksetsPerCell  int     // default 100
	Seed             int64
	NonPreemptiveToo bool // additionally evaluate the Sec. V non-preemptive mode
}

func (c *AblationConfig) withDefaults() AblationConfig {
	out := *c
	if out.M <= 0 {
		out.M = 4
	}
	if out.UtilFrac <= 0 {
		out.UtilFrac = 0.8
	}
	if out.TasksetsPerCell <= 0 {
		out.TasksetsPerCell = 100
	}
	return out
}

// AblationCell is one (policy, heuristic) grid entry.
type AblationCell struct {
	Policy        core.Policy
	Heuristic     partition.Heuristic
	NonPreemptive bool
	Generated     int
	Accepted      int
	MeanTightness float64 // mean per-task tightness over accepted tasksets
}

// AcceptanceRatio returns accepted/generated.
func (c AblationCell) AcceptanceRatio() float64 {
	if c.Generated == 0 {
		return 0
	}
	return float64(c.Accepted) / float64(c.Generated)
}

// RunAblation sweeps the (policy, heuristic) grid on a shared workload
// stream so cells are directly comparable.
func RunAblation(cfg AblationConfig) ([]AblationCell, error) {
	c := cfg.withDefaults()
	policies := []core.Policy{core.BestTightness, core.FirstFeasible, core.LeastLoaded}
	heuristics := []partition.Heuristic{partition.FirstFit, partition.BestFit, partition.WorstFit, partition.NextFit}
	modes := []bool{false}
	if c.NonPreemptiveToo {
		modes = append(modes, true)
	}

	var cells []AblationCell
	for _, np := range modes {
		for _, pol := range policies {
			for _, h := range heuristics {
				cell := AblationCell{Policy: pol, Heuristic: h, NonPreemptive: np}
				var tightSum float64
				for t := 0; t < c.TasksetsPerCell; t++ {
					rng := stats.SplitRNG(c.Seed, int64(t))
					w, err := taskgen.Generate(taskgen.DefaultParams(c.M, c.UtilFrac*float64(c.M)), rng)
					if err != nil {
						continue
					}
					cell.Generated++
					part, err := partition.PartitionRT(w.RT, c.M, h)
					if err != nil {
						continue
					}
					in, err := core.NewInput(c.M, w.RT, part.CoreOf, w.Sec)
					if err != nil {
						return nil, fmt.Errorf("ablation: %w", err)
					}
					var r *core.Result
					if np {
						r = core.HydraExt(in, core.ExtOptions{
							HydraOptions:          core.HydraOptions{Policy: pol},
							NonPreemptiveSecurity: true,
						})
					} else {
						r = core.Hydra(in, core.HydraOptions{Policy: pol})
					}
					if r.Schedulable {
						cell.Accepted++
						tightSum += r.Cumulative / float64(len(w.Sec))
					}
				}
				if cell.Accepted > 0 {
					cell.MeanTightness = tightSum / float64(cell.Accepted)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}
