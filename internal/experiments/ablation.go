package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hydra/internal/core"
	"hydra/internal/engine"
	"hydra/internal/partition"
	"hydra/internal/taskgen"
)

// AblationConfig parametrizes the design-choice sweep of DESIGN.md §5: a
// grid over allocation schemes and real-time partition heuristics, measured
// by acceptance ratio and mean per-task tightness at a fixed utilization
// level.
type AblationConfig struct {
	M                int
	UtilFrac         float64 // total utilization as a fraction of M; default 0.8
	TasksetsPerCell  int     // default 100
	Seed             int64
	NonPreemptiveToo bool // additionally evaluate the Sec. V non-preemptive mode
	// Schemes selects the scheme axis of the grid by registry name; default
	// the three HYDRA commitment policies. With NonPreemptiveToo, each
	// scheme's "-np" registry variant is evaluated as well.
	Schemes []string
	// Workers bounds the parallel grid workers; 0 selects GOMAXPROCS.
	Workers int
	// ResultsVersion pins the RNG family behind the taskset draws
	// (stats.RNGVersion: 1 = historical math/rand, 2 = SplitMix64). Absent
	// selects the default for new runs; inside a campaign it must match the
	// manifest's pinned version.
	ResultsVersion int `json:"results_version,omitempty"`
}

func (c *AblationConfig) withDefaults() AblationConfig {
	out := *c
	if out.M <= 0 {
		out.M = 4
	}
	if out.UtilFrac <= 0 {
		out.UtilFrac = 0.8
	}
	if out.TasksetsPerCell <= 0 {
		out.TasksetsPerCell = 100
	}
	if len(out.Schemes) == 0 {
		out.Schemes = []string{"hydra", "hydra-first-feasible", "hydra-least-loaded"}
	}
	return out
}

// AblationCell is one (scheme, heuristic) grid entry.
type AblationCell struct {
	Scheme        string
	Heuristic     partition.Heuristic
	NonPreemptive bool
	Generated     int
	Accepted      int
	MeanTightness float64 // mean per-task tightness over accepted tasksets
}

// AcceptanceRatio returns accepted/generated.
func (c AblationCell) AcceptanceRatio() float64 {
	if c.Generated == 0 {
		return 0
	}
	return float64(c.Accepted) / float64(c.Generated)
}

// RunAblation sweeps the (scheme, heuristic) grid on a shared workload
// stream so cells are directly comparable: every grid cell sees exactly the
// same taskset draws. Tasksets are evaluated in parallel on the engine;
// results are identical for any worker count.
func RunAblation(cfg AblationConfig) ([]AblationCell, error) {
	return RunAblationCtx(context.Background(), cfg)
}

// RunAblationCtx is RunAblation with cancellation.
func RunAblationCtx(ctx context.Context, cfg AblationConfig) ([]AblationCell, error) {
	r, err := runAblation(ctx, cfg, Hooks{})
	if err != nil {
		return nil, err
	}
	return r.Cells, nil
}

// AblationResult is the "ablation" campaign's result document: the
// results_version the draws came from plus the (scheme, heuristic) grid
// cells. The rest of the config is deliberately not echoed back so results
// stay byte-identical across settings (like Workers) that cannot move a draw.
type AblationResult struct {
	ResultsVersion int `json:"results_version"`
	Cells          []AblationCell
}

// ablationCellResult is one taskset draw's outcome across every
// (mode, scheme, heuristic) combo; exported fields let campaign checkpoints
// round-trip it through JSON.
type ablationCellResult struct {
	Generated bool
	Accepted  []bool
	Tightness []float64 // per-task mean when accepted
}

// runAblation is the campaign-hooked driver behind RunAblationCtx and the
// "ablation" spec.
func runAblation(ctx context.Context, cfg AblationConfig, hooks Hooks) (*AblationResult, error) {
	c := cfg.withDefaults()
	ver, err := resolveResultsVersion("ablation", c.ResultsVersion, hooks)
	if err != nil {
		return nil, err
	}
	c.ResultsVersion = int(ver)
	heuristics := []partition.Heuristic{partition.FirstFit, partition.BestFit, partition.WorstFit, partition.NextFit}
	modes := []bool{false}
	if c.NonPreemptiveToo {
		modes = append(modes, true)
	}

	// Flatten the (mode, scheme, heuristic) combos in reporting order.
	type combo struct {
		alloc core.Allocator
		h     partition.Heuristic
		np    bool
	}
	var combos []combo
	for _, np := range modes {
		for _, name := range c.Schemes {
			if np {
				name += "-np"
			}
			allocs, err := core.Resolve(name)
			if err != nil {
				return nil, fmt.Errorf("ablation: %w", err)
			}
			for _, h := range heuristics {
				combos = append(combos, combo{alloc: allocs[0], h: h, np: np})
			}
		}
	}

	// One engine cell per taskset draw: the draw is shared across every
	// combo (paired comparison), so the workload stream depends only on the
	// draw index — exactly the serial driver's historical stream.
	draws := make([]int, c.TasksetsPerCell)
	for t := range draws {
		draws[t] = t
	}
	if hooks.Total != nil {
		hooks.Total(len(draws))
	}
	results, err := engine.Run(ctx, draws, func(ctx context.Context, idx int, rng *rand.Rand, t int) (ablationCellResult, error) {
		w, err := taskgen.Generate(taskgen.DefaultParams(c.M, c.UtilFrac*float64(c.M)), rng)
		if err != nil {
			return ablationCellResult{}, nil
		}
		out := ablationCellResult{
			Generated: true,
			Accepted:  make([]bool, len(combos)),
			Tightness: make([]float64, len(combos)),
		}
		// The RT partition depends only on the heuristic; compute each once.
		parts := make(map[partition.Heuristic][]int, len(heuristics))
		for _, h := range heuristics {
			if p, err := partition.PartitionRT(w.RT, c.M, h); err == nil {
				parts[h] = p.CoreOf
			}
		}
		for i, cb := range combos {
			coreOf, ok := parts[cb.h]
			if !ok {
				continue
			}
			in, err := core.NewInput(c.M, w.RT, coreOf, w.Sec)
			if err != nil {
				return ablationCellResult{}, err
			}
			if r := cb.alloc.Allocate(in); r.Schedulable {
				out.Accepted[i] = true
				out.Tightness[i] = r.Cumulative / float64(len(w.Sec))
			}
		}
		return out, nil
	}, campaignEngineOptions[ablationCellResult](engine.Options{Workers: c.Workers, Seed: c.Seed, ResultsVersion: ver}, hooks))
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}

	cells := make([]AblationCell, len(combos))
	for i, cb := range combos {
		cells[i] = AblationCell{Scheme: cb.alloc.Name(), Heuristic: cb.h, NonPreemptive: cb.np}
	}
	tightSum := make([]float64, len(combos))
	for _, r := range results {
		if !r.Generated {
			continue
		}
		for i := range combos {
			cells[i].Generated++
			if r.Accepted[i] {
				cells[i].Accepted++
				tightSum[i] += r.Tightness[i]
			}
		}
	}
	for i := range cells {
		if cells[i].Accepted > 0 {
			cells[i].MeanTightness = tightSum[i] / float64(cells[i].Accepted)
		}
	}
	return &AblationResult{ResultsVersion: int(ver), Cells: cells}, nil
}
