package syspersist

import (
	"fmt"
	"sync"

	"hydra/internal/online"
	"hydra/internal/partition"
	"hydra/internal/rts"
)

// ErrClosed is returned by mutations on a system whose store has been closed
// (it is being rebalanced or the registry is shutting down). Re-resolve the
// id through the registry for the live instance.
var ErrClosed = fmt.Errorf("syspersist: system closed")

// DurableSystem pairs one online.System with its write-ahead store. Every
// mutation appends its op record to events.jsonl before applying it in
// memory: an append failure mutates nothing, and a crash after the append is
// harmless because the op was never acknowledged and replays
// deterministically on recovery. Reads go straight to the underlying system.
//
// The wrapper mutex serializes append+apply pairs so the log order always
// equals the apply order — the invariant replay depends on.
type DurableSystem struct {
	mu        sync.Mutex
	sys       *online.System
	store     *Store
	every     int // ops between snapshots
	sinceSnap int
	closed    bool
	snapBusy  bool // an async snapshot write is in flight (guarded by mu)

	snapWG  sync.WaitGroup
	snapMu  sync.Mutex // serializes snapshot file writes
	snapSeq uint64     // highest snapshot seq written (guarded by snapMu)
}

// System returns the underlying in-memory system for read paths (Snapshot,
// EventsSince, accessors). Mutations must go through the wrapper.
func (d *DurableSystem) System() *online.System { return d.sys }

// ID returns the system id.
func (d *DurableSystem) ID() string { return d.sys.ID() }

// Snapshot returns a copy of the committed state.
func (d *DurableSystem) Snapshot() online.Snapshot { return d.sys.Snapshot() }

// Version returns the system's current event version.
func (d *DurableSystem) Version() uint64 { return d.sys.Version() }

// EventsSince exposes the decision log's snapshot-then-wait seam.
func (d *DurableSystem) EventsSince(since uint64) ([]online.Event, <-chan struct{}) {
	return d.sys.EventsSince(since)
}

// Wake wakes event watchers without logging anything.
func (d *DurableSystem) Wake() { d.sys.Wake() }

// Dir returns the system's persistence directory.
func (d *DurableSystem) Dir() string { return d.store.dir }

// append writes rec ahead of the op it describes; callers hold d.mu.
func (d *DurableSystem) appendLocked(rec *Record) error {
	if d.closed {
		return fmt.Errorf("%w: %q", ErrClosed, d.sys.ID())
	}
	rec.PreVersion = d.sys.Version()
	return d.store.Append(rec)
}

// maybeSnapshotLocked schedules a snapshot every `every` applied ops. The
// write happens on a background goroutine: a snapshot is only a recovery
// accelerator — the op log is the source of truth — so it must not tax the
// admit ack path with a file write. At most one writer is in flight; if the
// cadence fires while one is still running, the snapshot is simply skipped
// until the next multiple (recovery replays a slightly longer tail).
func (d *DurableSystem) maybeSnapshotLocked() {
	d.sinceSnap++
	if d.sinceSnap < d.every || d.snapBusy || d.closed {
		return
	}
	d.sinceSnap = 0
	d.snapBusy = true
	ps, seq := d.sys.PersistedState(), d.store.seq
	d.snapWG.Add(1)
	go func() {
		defer d.snapWG.Done()
		_ = d.writeSnap(ps, seq) // best effort: failure only slows recovery
		d.mu.Lock()
		d.snapBusy = false
		d.mu.Unlock()
	}()
}

// writeSnap persists one captured state unless a newer snapshot already
// landed (async writers and Flush may interleave; seq ordering keeps the
// file monotonic so recovery never replays from an older cut than needed).
func (d *DurableSystem) writeSnap(ps online.PersistedState, seq uint64) error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	if seq < d.snapSeq {
		return nil
	}
	if err := d.store.WriteSnapshot(snapshotOf(ps, seq)); err != nil {
		return err
	}
	d.snapSeq = seq
	return nil
}

// AddRT durably try-admits a real-time task: the op is logged, then applied.
// Validation and duplicate names fail before anything is logged (they would
// not advance the decision log).
func (d *DurableSystem) AddRT(t rts.RTTask) (online.Placement, error) {
	if err := t.Validate(); err != nil {
		return online.Placement{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sys.Has(t.Name) {
		return online.Placement{}, fmt.Errorf("%w: %q", online.ErrDuplicateName, t.Name)
	}
	j := rtToJSON(t)
	if err := d.appendLocked(&Record{Op: OpAddRT, RT: &j}); err != nil {
		return online.Placement{}, err
	}
	p, err := d.sys.AddRT(t)
	d.maybeSnapshotLocked()
	return p, err
}

// AddSecurity durably try-admits a security task.
func (d *DurableSystem) AddSecurity(t rts.SecurityTask) (online.Placement, error) {
	if err := t.Validate(); err != nil {
		return online.Placement{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sys.Has(t.Name) {
		return online.Placement{}, fmt.Errorf("%w: %q", online.ErrDuplicateName, t.Name)
	}
	j := secToJSON(t)
	if err := d.appendLocked(&Record{Op: OpAddSecurity, Security: &j}); err != nil {
		return online.Placement{}, err
	}
	p, err := d.sys.AddSecurity(t)
	d.maybeSnapshotLocked()
	return p, err
}

// Remove durably retires the named task.
func (d *DurableSystem) Remove(name string) (online.Removed, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.sys.Has(name) {
		return online.Removed{}, fmt.Errorf("%w: %q", online.ErrNotFound, name)
	}
	if err := d.appendLocked(&Record{Op: OpRemove, Task: name}); err != nil {
		return online.Removed{}, err
	}
	r, err := d.sys.Remove(name)
	d.maybeSnapshotLocked()
	return r, err
}

// Reallocate durably re-runs the system's scheme from scratch. Both outcomes
// advance the decision log, so the op is always recorded.
func (d *DurableSystem) Reallocate() (online.Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.appendLocked(&Record{Op: OpReallocate}); err != nil {
		return online.Snapshot{}, err
	}
	snap, err := d.sys.Reallocate()
	d.maybeSnapshotLocked()
	return snap, err
}

// Flush writes a snapshot at the current op-log position so the next
// recovery replays nothing (graceful-shutdown path).
func (d *DurableSystem) Flush() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrClosed, d.sys.ID())
	}
	ps, seq := d.sys.PersistedState(), d.store.seq
	d.sinceSnap = 0
	d.mu.Unlock()
	return d.writeSnap(ps, seq)
}

// close closes the store; further mutations return ErrClosed. Any in-flight
// async snapshot write is drained first so the directory is quiescent before
// a caller removes or rebalances it. In-flight watchers are woken so follow
// streams re-check liveness.
func (d *DurableSystem) close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.snapWG.Wait()
	d.mu.Lock()
	err := d.store.Close()
	d.mu.Unlock()
	d.sys.Wake()
	return err
}

// applyRecord replays one op on a system. Outcomes are intentionally ignored:
// the engine is deterministic, so a rejected (or failed) op rejects again
// identically, advancing the event version exactly as the original run did.
// The PreVersion chain is the divergence guard.
func applyRecord(sys *online.System, rec Record) error {
	if v := sys.Version(); v != rec.PreVersion {
		return fmt.Errorf("syspersist: replay diverged at op %d: version %d, log recorded %d", rec.Seq, v, rec.PreVersion)
	}
	switch rec.Op {
	case OpAddRT:
		if rec.RT == nil {
			return fmt.Errorf("syspersist: op %d: add-rt without rt payload", rec.Seq)
		}
		_, _ = sys.AddRT(rtFromJSON(*rec.RT)) //lint:allow walorder replay applies an op already on the log
	case OpAddSecurity:
		if rec.Security == nil {
			return fmt.Errorf("syspersist: op %d: add-security without security payload", rec.Seq)
		}
		_, _ = sys.AddSecurity(secFromJSON(*rec.Security)) //lint:allow walorder replay applies an op already on the log
	case OpRemove:
		_, _ = sys.Remove(rec.Task) //lint:allow walorder replay applies an op already on the log
	case OpReallocate:
		_, _ = sys.Reallocate() //lint:allow walorder replay applies an op already on the log
	default:
		return fmt.Errorf("syspersist: op %d: unknown op %q", rec.Seq, rec.Op)
	}
	return nil
}

// Recover rebuilds one system from its directory: manifest load, snapshot
// restore when a valid snapshot covers a log prefix (a snapshot claiming ops
// the log does not contain is ignored — full replay from the manifest), then
// replay of the op tail, and finally reopening the log for appends. No event
// is re-logged for replayed history, so event versions stay contiguous with
// the previous life. obs, when non-nil, observes the reopened store's
// persistence latencies (replay itself is not timed — it is recovery, not
// serving).
func Recover(dir string, snapshotEvery int, fsync bool, obs Observer) (*DurableSystem, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	h, err := partition.ParseHeuristic(man.Heuristic)
	if err != nil {
		return nil, fmt.Errorf("syspersist: manifest %s: %w", dir, err)
	}
	recs, err := readLog(dir)
	if err != nil {
		return nil, err
	}
	var lastSeq uint64
	if len(recs) > 0 {
		lastSeq = recs[len(recs)-1].Seq
	}
	var sys *online.System
	replayFrom := uint64(0)
	if sn := readSnapshot(dir); sn != nil && sn.Seq <= lastSeq {
		if restored, err := online.RestoreSystem(man.ID, man.Scheme, h, man.Cores, man.ReallocateAfter, sn.persistedState()); err == nil {
			sys, replayFrom = restored, sn.Seq
		}
	}
	if sys == nil {
		rt := make([]rts.RTTask, 0, len(man.RTTasks))
		for _, j := range man.RTTasks {
			rt = append(rt, rtFromJSON(j))
		}
		sec := make([]rts.SecurityTask, 0, len(man.SecurityTasks))
		for _, j := range man.SecurityTasks {
			sec = append(sec, secFromJSON(j))
		}
		sys, err = online.NewSystem(man.ID, man.Scheme, h, man.Cores, rt, man.RTPartition, sec)
		if err != nil {
			return nil, fmt.Errorf("syspersist: rebuild %s from manifest: %w", man.ID, err)
		}
		sys.SetReallocateAfter(man.ReallocateAfter)
	}
	for _, rec := range recs {
		if rec.Seq <= replayFrom {
			continue
		}
		if err := applyRecord(sys, rec); err != nil {
			return nil, err
		}
	}
	store, err := openLog(dir, lastSeq, fsync, obs)
	if err != nil {
		return nil, err
	}
	return &DurableSystem{sys: sys, store: store, every: snapshotEvery}, nil
}
