package syspersist_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hydra/internal/online"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/stats"
	"hydra/internal/syspersist"
	"hydra/internal/taskgen"
)

// testWorkload draws a small deterministic schedulable taskset.
func testWorkload(t testing.TB, m int, util float64, seed int64) *taskgen.Workload {
	t.Helper()
	rng := stats.SplitRNG(99, seed)
	w, err := taskgen.Generate(taskgen.DefaultParams(m, util), rng)
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	return w
}

func openRegistry(t testing.TB, dir string, shards, snapshotEvery int) *syspersist.Registry {
	t.Helper()
	r, err := syspersist.Open(syspersist.Options{Dir: dir, Shards: shards, MaxSystems: 128, SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// snapJSON serializes a system's committed state for byte comparison.
func snapJSON(t testing.TB, snap online.Snapshot) []byte {
	t.Helper()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// driveOps applies a deterministic mixed op sequence (admits of both kinds,
// removals, a reallocate) through fn, which either hits a DurableSystem or a
// shadow in-memory system. Errors from individual ops (rejections) are part
// of the sequence, not failures.
type opDriver interface {
	AddRT(rts.RTTask) (online.Placement, error)
	AddSecurity(rts.SecurityTask) (online.Placement, error)
	Remove(string) (online.Removed, error)
	Reallocate() (online.Snapshot, error)
}

func driveOps(w *taskgen.Workload, d opDriver, n int) {
	for i := 0; i < n; i++ {
		switch {
		case i%7 == 3 && i/7 < len(w.RT):
			_, _ = d.AddRT(w.RT[i/7])
		case i%5 == 4:
			if i/5 < len(w.Sec) {
				_, _ = d.Remove(w.Sec[i/5].Name)
			}
		case i%11 == 9:
			_, _ = d.Reallocate()
		default:
			if i < len(w.Sec) {
				_, _ = d.AddSecurity(w.Sec[i])
			} else {
				_, _ = d.AddSecurity(rts.SecurityTask{
					Name: fmt.Sprintf("extra-%d", i), C: 0.2, TDes: 2000 + float64(i), TMax: 30000,
				})
			}
		}
	}
}

// shadow builds an in-memory system applying the same creation parameters a
// registry Create uses.
func shadow(t *testing.T, id string, m int) *online.System {
	t.Helper()
	s, err := online.NewSystem(id, "hydra", partition.BestFit, m, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertFutureDecisionsEqual applies identical probe mutations to both
// systems and requires byte-identical outcomes: placements, event types and
// versions, and final committed state. This is the real recovery contract —
// not just equal state, but an indistinguishable decision future.
func assertFutureDecisionsEqual(t *testing.T, got, want opDriver, gotEv, wantEv func(uint64) []online.Event, v0 uint64) {
	t.Helper()
	probeSec := rts.SecurityTask{Name: "probe-sec", C: 0.3, TDes: 1500, TMax: 25000}
	probeRT := rts.RTTask{Name: "probe-rt", C: 0.5, T: 400, D: 400}
	gp1, ge1 := got.AddSecurity(probeSec)
	wp1, we1 := want.AddSecurity(probeSec)
	if gp1 != wp1 || fmt.Sprint(ge1) != fmt.Sprint(we1) {
		t.Fatalf("probe security admit diverged: (%+v, %v) vs (%+v, %v)", gp1, ge1, wp1, we1)
	}
	gp2, ge2 := got.AddRT(probeRT)
	wp2, we2 := want.AddRT(probeRT)
	if gp2 != wp2 || fmt.Sprint(ge2) != fmt.Sprint(we2) {
		t.Fatalf("probe rt admit diverged: (%+v, %v) vs (%+v, %v)", gp2, ge2, wp2, we2)
	}
	gs, gerr := got.Reallocate()
	ws, werr := want.Reallocate()
	if fmt.Sprint(gerr) != fmt.Sprint(werr) {
		t.Fatalf("probe reallocate diverged: %v vs %v", gerr, werr)
	}
	if gerr == nil {
		gs.ID, ws.ID = "", ""
		if string(snapJSON(t, gs)) != string(snapJSON(t, ws)) {
			t.Fatalf("probe reallocate snapshots diverged:\n%s\nvs\n%s", snapJSON(t, gs), snapJSON(t, ws))
		}
	}
	g := gotEv(v0)
	wv := wantEv(v0)
	gj, _ := json.Marshal(g)
	wj, _ := json.Marshal(wv)
	if string(gj) != string(wj) {
		t.Fatalf("probe event logs diverged:\n%s\nvs\n%s", gj, wj)
	}
}

// eventsFn adapts EventsSince to drop the watch channel for comparisons.
func eventsFn(s interface {
	EventsSince(uint64) ([]online.Event, <-chan struct{})
}) func(uint64) []online.Event {
	return func(v uint64) []online.Event { ev, _ := s.EventsSince(v); return ev }
}

// TestKillRecoverDecisionIdentity is the kill/recover property test: drive a
// deterministic op mix on durable systems (with mid-sequence snapshots), drop
// the registry without any graceful flush — the crash — reopen the directory,
// and require every recovered system to be decision-identical to a shadow
// system that never restarted: same committed state, same event versions,
// and byte-identical outcomes for future admits and reallocations. Run at
// two shard counts so recovery works both under a single lock and sharded.
func TestKillRecoverDecisionIdentity(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			r := openRegistry(t, dir, shards, 3) // snapshot every 3 ops: tails replay over snapshots
			const systems = 3
			type life struct {
				id     string
				w      *taskgen.Workload
				shadow *online.System
				vLive  uint64
			}
			lives := make([]*life, 0, systems)
			for i := 0; i < systems; i++ {
				id := fmt.Sprintf("sys-%d", i)
				w := testWorkload(t, 2, 0.5, int64(40+i))
				ds, err := r.Create(id, "hydra", partition.BestFit, 2, nil, nil, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				sh := shadow(t, id, 2)
				driveOps(w, ds, 17+i)
				driveOps(w, sh, 17+i)
				if ds.Version() != sh.Version() {
					t.Fatalf("%s: live version %d, shadow %d", id, ds.Version(), sh.Version())
				}
				lives = append(lives, &life{id: id, w: w, shadow: sh, vLive: ds.Version()})
			}
			// Crash: no Close, no Flush. Reopen the same directory.
			r2 := openRegistry(t, dir, shards, 3)
			defer r2.Close()
			for _, l := range lives {
				ds, ok := r2.Get(l.id)
				if !ok {
					t.Fatalf("system %s not recovered", l.id)
				}
				if ds.Version() != l.vLive {
					t.Fatalf("%s: recovered version %d, want %d", l.id, ds.Version(), l.vLive)
				}
				got := snapJSON(t, ds.Snapshot())
				want := snapJSON(t, l.shadow.Snapshot())
				if string(got) != string(want) {
					t.Fatalf("%s: recovered state diverged:\n%s\nvs\n%s", l.id, got, want)
				}
				assertFutureDecisionsEqual(t, ds, l.shadow, eventsFn(ds), eventsFn(l.shadow), l.vLive)
			}
		})
	}
}

// TestConcurrentDurableAdmitsRecoverExactly drives racing mutations at one
// durable system (run under -race): the wrapper lock must serialize
// append+apply pairs so the op log replays to exactly the live outcome, in
// whatever order the race resolved to.
func TestConcurrentDurableAdmitsRecoverExactly(t *testing.T) {
	dir := t.TempDir()
	r := openRegistry(t, dir, 2, 5)
	ds, err := r.Create("hammer", "hydra", partition.BestFit, 2, nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("g%d-%d", g, i)
				if _, err := ds.AddSecurity(rts.SecurityTask{Name: name, C: 0.2, TDes: 2000, TMax: 30000}); err == nil && i%2 == 1 {
					_, _ = ds.Remove(name)
				}
			}
		}(g)
	}
	wg.Wait()
	liveState := snapJSON(t, ds.Snapshot())
	liveVersion := ds.Version()
	// Crash and recover.
	r2 := openRegistry(t, dir, 2, 5)
	defer r2.Close()
	got, ok := r2.Get("hammer")
	if !ok {
		t.Fatal("system not recovered")
	}
	if got.Version() != liveVersion {
		t.Fatalf("recovered version %d, want %d", got.Version(), liveVersion)
	}
	if string(snapJSON(t, got.Snapshot())) != string(liveState) {
		t.Fatalf("recovered state diverged:\n%s\nvs\n%s", snapJSON(t, got.Snapshot()), liveState)
	}
}

// TestRecoveryEdgeCases exercises the damaged-directory paths table-driven:
// each case corrupts one system's files after a crash-style stop, then
// recovery must produce exactly the state implied by the acknowledged,
// well-formed prefix.
func TestRecoveryEdgeCases(t *testing.T) {
	secTask := func(i int) rts.SecurityTask {
		return rts.SecurityTask{Name: fmt.Sprintf("s%d", i), C: 0.3, TDes: 1000 + float64(i), TMax: 20000}
	}
	// build creates a registry with one system and n admitted tasks, without
	// flushing, and returns the system dir plus the expected shadow.
	build := func(t *testing.T, dir string, n int) (string, *online.System) {
		r := openRegistry(t, dir, 1, 1000) // no automatic snapshots unless the case writes one
		ds, err := r.Create("edge", "hydra", partition.BestFit, 2, nil, nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		sh := shadow(t, "edge", 2)
		for i := 0; i < n; i++ {
			if _, err := ds.AddSecurity(secTask(i)); err != nil {
				t.Fatal(err)
			}
			if _, err := sh.AddSecurity(secTask(i)); err != nil {
				t.Fatal(err)
			}
		}
		return ds.Dir(), sh
	}
	cases := []struct {
		name   string
		ops    int
		mutate func(t *testing.T, sysDir string)
	}{
		{name: "clean-crash", ops: 4, mutate: func(t *testing.T, sysDir string) {}},
		{name: "torn-log-tail", ops: 4, mutate: func(t *testing.T, sysDir string) {
			// A half-written append: the op was never acknowledged, so
			// recovery must truncate it away and land on the 4-op state.
			f, err := os.OpenFile(filepath.Join(sysDir, "events.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`{"seq":5,"pre_version":6,"op":"add-sec`); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{name: "snapshot-newer-than-log", ops: 4, mutate: func(t *testing.T, sysDir string) {
			// A snapshot claiming ops the log does not contain (corrupt
			// version): it must be ignored in favor of full replay.
			sn := []byte(`{"seq":999,"version":999,"cursor":0,"rt_tasks":[],"security_tasks":[]}`)
			if err := os.WriteFile(filepath.Join(sysDir, "snapshot.json"), sn, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "garbage-snapshot", ops: 3, mutate: func(t *testing.T, sysDir string) {
			if err := os.WriteFile(filepath.Join(sysDir, "snapshot.json"), []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "empty-log", ops: 0, mutate: func(t *testing.T, sysDir string) {}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sysDir, sh := build(t, dir, tc.ops)
			tc.mutate(t, sysDir)
			r := openRegistry(t, dir, 1, 1000)
			defer r.Close()
			ds, ok := r.Get("edge")
			if !ok {
				t.Fatal("system not recovered")
			}
			if ds.Version() != sh.Version() {
				t.Fatalf("recovered version %d, want %d", ds.Version(), sh.Version())
			}
			if got, want := snapJSON(t, ds.Snapshot()), snapJSON(t, sh.Snapshot()); string(got) != string(want) {
				t.Fatalf("recovered state diverged:\n%s\nvs\n%s", got, want)
			}
			assertFutureDecisionsEqual(t, ds, sh, eventsFn(ds), eventsFn(sh), ds.Version())
		})
	}
}

// TestDeleteDoesNotResurrect: a deleted system must not come back on the
// next recovery, and its directory must be gone (no disk leak).
func TestDeleteDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	r := openRegistry(t, dir, 2, 4)
	ds, err := r.Create("doomed", "hydra", partition.BestFit, 2, nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddSecurity(rts.SecurityTask{Name: "x", C: 0.3, TDes: 1000, TMax: 20000}); err != nil {
		t.Fatal(err)
	}
	sysDir := ds.Dir()
	if !r.Delete("doomed") {
		t.Fatal("delete failed")
	}
	if _, err := os.Stat(sysDir); !os.IsNotExist(err) {
		t.Fatalf("system dir leaked after delete: %v", err)
	}
	r2 := openRegistry(t, dir, 2, 4)
	defer r2.Close()
	if _, ok := r2.Get("doomed"); ok {
		t.Fatal("deleted system resurrected on recovery")
	}
	if got := len(r2.List()); got != 0 {
		t.Fatalf("recovered %d systems, want 0", got)
	}
}

// TestShardCountChangeRehomes: systems persisted under one shard count must
// recover intact under another — the consistent-hash home moves, the data
// follows, decisions stay identical.
func TestShardCountChangeRehomes(t *testing.T) {
	dir := t.TempDir()
	r := openRegistry(t, dir, 1, 3)
	shadows := map[string]*online.System{}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("move-%d", i)
		ds, err := r.Create(id, "hydra", partition.BestFit, 2, nil, nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		sh := shadow(t, id, 2)
		w := testWorkload(t, 2, 0.4, int64(70+i))
		driveOps(w, ds, 9)
		driveOps(w, sh, 9)
		shadows[id] = sh
	}
	r.Close() // graceful: final snapshots written
	r2 := openRegistry(t, dir, 8, 3)
	defer r2.Close()
	if got := len(r2.List()); got != 6 {
		t.Fatalf("recovered %d systems under new shard count, want 6", got)
	}
	for id, sh := range shadows {
		ds, ok := r2.Get(id)
		if !ok {
			t.Fatalf("system %s lost in rehome", id)
		}
		if got, want := snapJSON(t, ds.Snapshot()), snapJSON(t, sh.Snapshot()); string(got) != string(want) {
			t.Fatalf("%s diverged after rehome:\n%s\nvs\n%s", id, got, want)
		}
	}
}

// TestRebalanceByteIdentity: Rebalance closes a system's store and rebuilds
// it by log replay — the failover recipe. The rebuilt instance must be
// byte-identical in state and version, its future decisions (including a
// Reallocate) identical to an uninterrupted shadow, and the old handle must
// refuse further mutations instead of silently writing nowhere.
func TestRebalanceByteIdentity(t *testing.T) {
	dir := t.TempDir()
	r := openRegistry(t, dir, 4, 1000) // no snapshots: rebalance must replay the full log
	ds, err := r.Create("roam", "hydra", partition.BestFit, 2, nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow(t, "roam", 2)
	w := testWorkload(t, 2, 0.5, 55)
	driveOps(w, ds, 13)
	driveOps(w, sh, 13)
	preState := snapJSON(t, ds.Snapshot())
	preVersion := ds.Version()

	fresh, err := r.Rebalance("roam")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Version() != preVersion {
		t.Fatalf("rebalanced version %d, want %d", fresh.Version(), preVersion)
	}
	if got := snapJSON(t, fresh.Snapshot()); string(got) != string(preState) {
		t.Fatalf("rebalanced state diverged:\n%s\nvs\n%s", got, preState)
	}
	if cur, ok := r.Get("roam"); !ok || cur != fresh {
		t.Fatal("registry must resolve to the rebalanced instance")
	}
	if _, err := ds.AddSecurity(rts.SecurityTask{Name: "late", C: 0.2, TDes: 2000, TMax: 30000}); err == nil {
		t.Fatal("stale handle must refuse mutations after rebalance")
	}
	assertFutureDecisionsEqual(t, fresh, sh, eventsFn(fresh), eventsFn(sh), preVersion)
}

// TestRegistryLifecycleAndCounters covers create/get/list/delete bookkeeping
// and the lossless per-shard counter aggregation (ported from the pre-shard
// registry and extended with the id-validation rules that now guard
// directory names).
func TestRegistryLifecycleAndCounters(t *testing.T) {
	r, err := syspersist.Open(syspersist.Options{Dir: t.TempDir(), Shards: 4, MaxSystems: 2, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w := testWorkload(t, 2, 0.6, 31)
	a, err := r.Create("sys-a", "hydra", partition.BestFit, 2, w.RT, nil, w.Sec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("sys-a", "hydra", partition.BestFit, 2, nil, nil, nil, 0); err == nil {
		t.Fatal("duplicate id must fail")
	}
	for _, bad := range []string{"bad id!", ".hidden", "a/b", "..", ""} {
		if bad == "" {
			continue
		}
		if _, err := r.Create(bad, "hydra", partition.BestFit, 2, nil, nil, nil, 0); err == nil {
			t.Fatalf("invalid id %q must fail", bad)
		}
	}
	anon, err := r.Create("", "hydra", partition.BestFit, 2, nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("overflow", "hydra", partition.BestFit, 2, nil, nil, nil, 0); err == nil {
		t.Fatal("registry bound must be enforced")
	}
	if got := r.List(); len(got) != 2 {
		t.Fatalf("list: %d systems, want 2", len(got))
	}
	if _, ok := r.Get("sys-a"); !ok {
		t.Fatal("get sys-a failed")
	}
	if _, err := a.AddSecurity(rts.SecurityTask{Name: "x", C: 0.5, TDes: 2000, TMax: 20000}); err != nil {
		t.Fatal(err)
	}
	if !r.Delete(anon.ID()) || r.Delete(anon.ID()) {
		t.Fatal("delete must succeed once")
	}
	c := r.Counters()
	if c.Active != 1 || c.Created != 2 || c.Deleted != 1 || c.Admitted != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if c.Events == 0 {
		t.Fatal("event counter not fed")
	}
	// Counters are process-lifetime: a recovery replays history without
	// re-counting it.
	dir := r.Dir()
	r.Close()
	r2 := openRegistry(t, dir, 4, 4)
	defer r2.Close()
	c2 := r2.Counters()
	if c2.Active != 1 || c2.Admitted != 0 || c2.Events != 0 || c2.Created != 0 {
		t.Fatalf("recovered counters not process-lifetime: %+v", c2)
	}
}

// TestMaxSystemsExactUnderConcurrentCreates hammers Create from many
// goroutines against a small global bound: the cap must hold exactly across
// shards (a per-shard bound would over- or under-admit depending on how the
// ids hash).
func TestMaxSystemsExactUnderConcurrentCreates(t *testing.T) {
	const max = 8
	r, err := syspersist.Open(syspersist.Options{Dir: t.TempDir(), Shards: 4, MaxSystems: max, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	var mu sync.Mutex
	created := 0
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := r.Create(fmt.Sprintf("c-%d-%d", g, i), "hydra", partition.BestFit, 1, nil, nil, nil, 0)
				if err == nil {
					mu.Lock()
					created++
					mu.Unlock()
				} else if !errorsIs(err, syspersist.ErrRegistryFull) {
					t.Errorf("unexpected create error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if created != max {
		t.Fatalf("created %d systems, want exactly %d", created, max)
	}
	if got := len(r.List()); got != max {
		t.Fatalf("list: %d systems, want %d", got, max)
	}
	// Deleting one frees exactly one slot.
	if !r.Delete(r.List()[0].ID()) {
		t.Fatal("delete failed")
	}
	if _, err := r.Create("one-more", "hydra", partition.BestFit, 1, nil, nil, nil, 0); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
	if _, err := r.Create("too-many", "hydra", partition.BestFit, 1, nil, nil, nil, 0); err == nil {
		t.Fatal("bound must hold after refill")
	}
}

// errorsIs avoids importing errors alongside the fmt-heavy test file.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestAutoReallocatePolicyPersists: the reallocate_after knob is recorded in
// the manifest and survives recovery, and the durable wrapper reproduces the
// reject -> reallocate -> admit sequence after a restart exactly as the
// in-memory system does.
func TestAutoReallocatePolicyPersists(t *testing.T) {
	dir := t.TempDir()
	r := openRegistry(t, dir, 2, 1000)
	ds, err := r.Create("frag", "hydra-first-feasible", partition.BestFit, 2, nil, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []rts.SecurityTask{
		{Name: "a1", C: 10, TDes: 50, TMax: 300},
		{Name: "a2", C: 30, TDes: 100, TMax: 300},
		{Name: "a3", C: 60, TDes: 100, TMax: 130},
	} {
		if _, err := ds.AddSecurity(task); err != nil {
			t.Fatalf("admit %s: %v", task.Name, err)
		}
	}
	if _, err := ds.Remove("a1"); err != nil {
		t.Fatal(err)
	}
	// Crash, recover: the knob must still fire on the first rejection.
	r2 := openRegistry(t, dir, 2, 1000)
	defer r2.Close()
	got, ok := r2.Get("frag")
	if !ok {
		t.Fatal("system not recovered")
	}
	if got.System().ReallocateAfter() != 1 {
		t.Fatalf("ReallocateAfter() = %d after recovery, want 1", got.System().ReallocateAfter())
	}
	base := got.Version()
	p, err := got.AddSecurity(rts.SecurityTask{Name: "b", C: 70, TDes: 100, TMax: 130})
	if err != nil {
		t.Fatalf("auto-reallocate admit after recovery: %v", err)
	}
	ev, _ := got.EventsSince(base)
	if len(ev) != 3 || ev[0].Type != online.EventReject || ev[1].Type != online.EventReallocate || ev[2].Type != online.EventAdmit {
		t.Fatalf("event sequence %+v, want reject/reallocate/admit", ev)
	}
	if p.Version != base+3 {
		t.Fatalf("admit version %d, want %d", p.Version, base+3)
	}
	// And the whole dance must itself recover: crash again, compare.
	state := snapJSON(t, got.Snapshot())
	r3 := openRegistry(t, dir, 2, 1000)
	defer r3.Close()
	again, ok := r3.Get("frag")
	if !ok {
		t.Fatal("system not recovered twice")
	}
	if string(snapJSON(t, again.Snapshot())) != string(state) {
		t.Fatal("auto-reallocate decisions did not replay identically")
	}
}
