// Package syspersist makes the long-lived systems of internal/online durable
// and shards their registry for scale-out. Every hosted system lives in its
// own directory as three files:
//
//	system.json    the creation manifest: id, scheme, heuristic, platform
//	               size, policy knobs and the initial taskset. Immutable.
//	events.jsonl   the write-ahead op log: one line per mutation attempt
//	               (add-rt, add-security, remove, reallocate), appended
//	               before the op is applied in memory. Append-only.
//	snapshot.json  a periodic atomic snapshot of the committed allocation
//	               plus the op-log position it reflects. Replaceable.
//
// The allocation engine is deterministic, so recovery is pure replay: rebuild
// the system from the manifest (or restore the snapshot, when one covers a
// log prefix) and re-apply the op tail through the same public methods a
// client would call. The recovered rts.AnalysisState, decision outcomes and
// event-log versions are bit-identical to the never-restarted process's. A
// torn final log line — the writing process died mid-append — is truncated
// away, like the jobs checkpoint reader; the op it carried was never
// acknowledged, so dropping it is correct.
//
// On top of the per-system store, Registry shards the id space over N
// independently locked shards (consistent hash of the id, power-of-two
// counts), each owning its systems and its persistence subdirectory, with
// lossless counter aggregation and a rebalance path that moves a system by
// closing its store and replaying its log.
package syspersist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hydra/internal/online"
	"hydra/internal/rts"
	"hydra/internal/tasksetio"
)

const (
	manifestName = "system.json"
	logName      = "events.jsonl"
	snapshotName = "snapshot.json"
)

// Manifest is the immutable birth record of one system: everything NewSystem
// needs to rebuild it from scratch before replaying the op log.
type Manifest struct {
	ID              string                       `json:"id"`
	Scheme          string                       `json:"scheme"`
	Heuristic       string                       `json:"heuristic"`
	Cores           int                          `json:"cores"`
	ReallocateAfter int                          `json:"reallocate_after,omitempty"`
	RTTasks         []tasksetio.RTTaskJSON       `json:"rt_tasks"`
	RTPartition     []int                        `json:"rt_partition,omitempty"`
	SecurityTasks   []tasksetio.SecurityTaskJSON `json:"security_tasks"`
}

// Op names of the write-ahead log records.
const (
	OpAddRT       = "add-rt"
	OpAddSecurity = "add-security"
	OpRemove      = "remove"
	OpReallocate  = "reallocate"
)

// Record is one events.jsonl line: a mutation attempt with its full input
// payload (replay needs inputs, not outcomes — the deterministic engine
// re-derives the outcome). Seq numbers records from 1; PreVersion is the
// system's event version just before the op was applied, re-checked during
// replay as a divergence guard.
type Record struct {
	Seq        uint64                      `json:"seq"`
	PreVersion uint64                      `json:"pre_version"`
	Op         string                      `json:"op"`
	RT         *tasksetio.RTTaskJSON       `json:"rt,omitempty"`
	Security   *tasksetio.SecurityTaskJSON `json:"security,omitempty"`
	Task       string                      `json:"task,omitempty"` // remove target
}

// PlacedRTJSON is one committed real-time task in a snapshot.
type PlacedRTJSON struct {
	tasksetio.RTTaskJSON
	Core int `json:"core"`
}

// PlacedSecJSON is one committed security task with its adapted period.
type PlacedSecJSON struct {
	tasksetio.SecurityTaskJSON
	Core     int     `json:"core"`
	PeriodMS float64 `json:"period_ms"`
}

// SnapshotFile is snapshot.json: the committed allocation in commit order
// plus every decision-affecting counter, as of op-log position Seq. Recovery
// restores it and replays only records with Seq greater than this.
type SnapshotFile struct {
	Seq           uint64          `json:"seq"`
	Version       uint64          `json:"version"`
	Cursor        int             `json:"cursor"`
	RejectStreak  int             `json:"reject_streak,omitempty"`
	RTTasks       []PlacedRTJSON  `json:"rt_tasks"`
	SecurityTasks []PlacedSecJSON `json:"security_tasks"`
}

func rtToJSON(t rts.RTTask) tasksetio.RTTaskJSON {
	j := tasksetio.RTTaskJSON{Name: t.Name, WCET: t.C, Period: t.T}
	if t.D != t.T {
		j.Deadline = t.D
	}
	return j
}

func rtFromJSON(j tasksetio.RTTaskJSON) rts.RTTask {
	d := j.Deadline
	if d == 0 {
		d = j.Period
	}
	return rts.RTTask{Name: j.Name, C: j.WCET, T: j.Period, D: d}
}

func secToJSON(t rts.SecurityTask) tasksetio.SecurityTaskJSON {
	return tasksetio.SecurityTaskJSON{Name: t.Name, WCET: t.C, DesiredPeriod: t.TDes, MaxPeriod: t.TMax, Weight: t.Weight}
}

func secFromJSON(j tasksetio.SecurityTaskJSON) rts.SecurityTask {
	return rts.SecurityTask{Name: j.Name, C: j.WCET, TDes: j.DesiredPeriod, TMax: j.MaxPeriod, Weight: j.Weight}
}

// snapshotOf converts a system's persisted state into the snapshot wire form
// pinned to op-log position seq.
func snapshotOf(ps online.PersistedState, seq uint64) SnapshotFile {
	sn := SnapshotFile{
		Seq:           seq,
		Version:       ps.Version,
		Cursor:        ps.Cursor,
		RejectStreak:  ps.RejectStreak,
		RTTasks:       []PlacedRTJSON{},
		SecurityTasks: []PlacedSecJSON{},
	}
	for _, p := range ps.RT {
		sn.RTTasks = append(sn.RTTasks, PlacedRTJSON{RTTaskJSON: rtToJSON(p.Task), Core: p.Core})
	}
	for _, p := range ps.Sec {
		sn.SecurityTasks = append(sn.SecurityTasks, PlacedSecJSON{SecurityTaskJSON: secToJSON(p.Task), Core: p.Core, PeriodMS: p.Period})
	}
	return sn
}

// persistedState converts the snapshot back to the engine's restore form.
func (sn *SnapshotFile) persistedState() online.PersistedState {
	ps := online.PersistedState{Version: sn.Version, Cursor: sn.Cursor, RejectStreak: sn.RejectStreak}
	for _, p := range sn.RTTasks {
		ps.RT = append(ps.RT, online.PlacedRT{Task: rtFromJSON(p.RTTaskJSON), Core: p.Core})
	}
	for _, p := range sn.SecurityTasks {
		ps.Sec = append(ps.Sec, online.PlacedSec{Task: secFromJSON(p.SecurityTaskJSON), Core: p.Core, Period: p.PeriodMS})
	}
	return ps
}

// Store is one system's open persistence directory: the append handle on the
// op log plus the bookkeeping to place new records and snapshots.
type Store struct {
	dir   string
	fsync bool
	obs   Observer // nil = unobserved; no clocks on the persistence paths
	log   *os.File
	seq   uint64 // last appended record's Seq
	buf   []byte // append scratch
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Seq returns the last appended record's sequence number.
func (st *Store) Seq() uint64 { return st.seq }

// writeFileAtomic writes data via a temp file + rename so readers (and
// crash recovery) see either the old or the new content, never a torn write.
func writeFileAtomic(path string, data []byte, fsync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// CreateStore initializes a fresh system directory: it writes the manifest
// atomically and opens an empty op log. The directory must not already hold a
// system (a half-created leftover is fine — it is overwritten). obs, when
// non-nil, receives append/fsync/snapshot timings.
func CreateStore(dir string, man Manifest, fsync bool, obs Observer) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	data, err := json.Marshal(&man)
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), append(data, '\n'), fsync); err != nil {
		return nil, err
	}
	log, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, fsync: fsync, obs: obs, log: log}, nil
}

// openLog opens the op log of an existing system directory for appending,
// continuing after the given last sequence number.
func openLog(dir string, lastSeq uint64, fsync bool, obs Observer) (*Store, error) {
	log, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, fsync: fsync, obs: obs, log: log, seq: lastSeq}, nil
}

// Append assigns the next sequence number to rec and writes it as one log
// line, before the caller applies the op in memory. With fsync enabled the
// line is forced to stable storage before Append returns.
func (st *Store) Append(rec *Record) error {
	rec.Seq = st.seq + 1
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	st.buf = append(append(st.buf[:0], line...), '\n')
	var t0 time.Time
	if st.obs != nil {
		t0 = time.Now()
	}
	if _, err := st.log.Write(st.buf); err != nil {
		return fmt.Errorf("syspersist: append op log: %w", err)
	}
	if st.obs != nil {
		st.obs.ObserveWALAppend(time.Since(t0))
	}
	if st.fsync {
		if st.obs != nil {
			t0 = time.Now()
		}
		if err := st.log.Sync(); err != nil {
			return fmt.Errorf("syspersist: sync op log: %w", err)
		}
		if st.obs != nil {
			st.obs.ObserveWALFsync(time.Since(t0))
		}
	}
	st.seq = rec.Seq
	return nil
}

// WriteSnapshot atomically replaces snapshot.json.
func (st *Store) WriteSnapshot(sn SnapshotFile) error {
	data, err := json.MarshalIndent(&sn, "", "  ")
	if err != nil {
		return err
	}
	var t0 time.Time
	if st.obs != nil {
		t0 = time.Now()
	}
	err = writeFileAtomic(filepath.Join(st.dir, snapshotName), append(data, '\n'), st.fsync)
	if st.obs != nil && err == nil {
		st.obs.ObserveSnapshot(time.Since(t0))
	}
	return err
}

// Close closes the op-log handle. The store must not be used afterwards.
func (st *Store) Close() error { return st.log.Close() }

// readManifest loads and validates system.json.
func readManifest(dir string) (Manifest, error) {
	var man Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return man, fmt.Errorf("syspersist: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("syspersist: parse manifest %s: %w", filepath.Join(dir, manifestName), err)
	}
	return man, nil
}

// readSnapshot loads snapshot.json. A missing or unparseable snapshot returns
// nil (recovery falls back to full replay — the snapshot is an accelerator,
// never the source of truth).
func readSnapshot(dir string) *SnapshotFile {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil
	}
	var sn SnapshotFile
	if err := json.Unmarshal(data, &sn); err != nil {
		return nil
	}
	return &sn
}

// readLog replays events.jsonl into records. The log is append-only and may
// end in a torn line when the writing process was killed mid-append;
// everything from the first malformed, truncated, or out-of-sequence line on
// is discarded and truncated away so future appends keep the file well-formed
// (the op a torn line carried was never acknowledged). A missing log is
// empty.
func readLog(dir string) ([]Record, error) {
	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("syspersist: read op log: %w", err)
	}
	var recs []Record
	valid := 0 // byte length of the well-formed prefix
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // truncated final line
		}
		line := raw[off : off+nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Seq != uint64(len(recs))+1 {
			break // corrupt from here on; drop the tail
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = off
	}
	if valid < len(raw) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("syspersist: trim torn op-log tail: %w", err)
		}
	}
	return recs, nil
}
