package syspersist_test

import (
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/syspersist"
)

// countObserver counts persistence signals (concurrency-safe: snapshots are
// written on background goroutines).
type countObserver struct {
	appends, fsyncs, snapshots atomic.Uint64
}

func (o *countObserver) ObserveWALAppend(time.Duration) { o.appends.Add(1) }
func (o *countObserver) ObserveWALFsync(time.Duration)  { o.fsyncs.Add(1) }
func (o *countObserver) ObserveSnapshot(time.Duration)  { o.snapshots.Add(1) }

func TestObserverSeesAppendsAndSnapshots(t *testing.T) {
	obs := &countObserver{}
	r, err := syspersist.Open(syspersist.Options{
		Dir: t.TempDir(), Shards: 1, MaxSystems: 4, SnapshotEvery: 2,
		Fsync: true, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ds, err := r.Create("obs-sys", "hydra", partition.BestFit, 2, nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 6
	for i := 0; i < ops; i++ {
		if _, err := ds.AddRT(rts.RTTask{Name: name("t", i), C: 1, T: 100, D: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if got := obs.appends.Load(); got != ops {
		t.Fatalf("observed %d WAL appends, want %d", got, ops)
	}
	if got := obs.fsyncs.Load(); got != ops {
		t.Fatalf("observed %d WAL fsyncs, want %d (fsync enabled)", got, ops)
	}
	if err := ds.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := obs.snapshots.Load(); got == 0 {
		t.Fatal("no snapshot writes observed after Flush")
	}
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}
