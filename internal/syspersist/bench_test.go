package syspersist_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/syspersist"
)

// BenchmarkDurableAdmit prices the durability tax on the online admit hot
// path: the same AddSecurity+Remove pair BenchmarkOnlineAdmit/incremental
// measures in memory (~0.6 us), but through a DurableSystem so every op is
// appended to the write-ahead log (and a snapshot lands every 64 ops, the
// default cadence). The no-fsync row is the default configuration and the
// acceptance bar (< 10 us/op); the fsync row is the kernel-crash-safe mode
// and shows what a physical barrier per acknowledged mutation costs.
func BenchmarkDurableAdmit(b *testing.B) {
	const m = 4
	w := testWorkload(b, m, 0.5*float64(m), 5)
	probe := rts.SecurityTask{Name: "probe", C: 2, TDes: 1500, TMax: 15000}
	for _, mode := range []struct {
		name  string
		fsync bool
	}{{"no-fsync", false}, {"fsync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			r, err := syspersist.Open(syspersist.Options{Dir: b.TempDir(), Shards: 1, Fsync: mode.fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			sys, err := r.Create("bench", "hydra", partition.BestFit, m, w.RT, nil, w.Sec, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.AddSecurity(probe); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Remove(probe.Name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystemRecovery measures a cold start over a populated systems
// directory: one system whose log holds 200 acknowledged ops and no
// snapshot, so every iteration is a worst-case full replay (manifest load +
// 200 op re-admissions). The per-recovered-op rate bounds how much history
// the -snapshot-every knob may leave in the tail before restarts get slow.
func BenchmarkSystemRecovery(b *testing.B) {
	const ops = 200
	dir := b.TempDir()
	opts := syspersist.Options{Dir: dir, Shards: 1, SnapshotEvery: 1 << 20}
	r, err := syspersist.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := r.Create("bench", "hydra", partition.BestFit, 4, nil, nil, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < ops/2; i++ {
		name := fmt.Sprintf("t%d", i)
		if _, err := sys.AddSecurity(rts.SecurityTask{Name: name, C: 0.5, TDes: 2000, TMax: 30000}); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Remove(name); err != nil {
			b.Fatal(err)
		}
	}
	version := sys.Version()
	sysDir := sys.Dir()
	r.Close()
	// Close flushed a snapshot; delete it so every recovery replays the log.
	snap := filepath.Join(sysDir, "snapshot.json")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := os.Remove(snap); err != nil && !os.IsNotExist(err) {
			b.Fatal(err)
		}
		b.StartTimer()
		r, err := syspersist.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		ds, ok := r.Get("bench")
		if !ok || ds.Version() != version {
			b.Fatalf("bad recovery: ok=%v version=%d want %d", ok, ds.Version(), version)
		}
		b.StopTimer()
		r.Close()
		b.StartTimer()
	}
	b.ReportMetric(ops, "replayed_ops/op")
}
