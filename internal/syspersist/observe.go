package syspersist

import "time"

// Observer receives the durability layer's latency signals: how long op-log
// appends, fsyncs and snapshot writes take. A nil Observer is the default
// and costs nothing — no clock is read on any persistence path unless one is
// attached (the admit-ack benchmarks run unobserved). Implementations must be
// safe for concurrent use: appends are serialized per system, but snapshot
// writes happen on background goroutines and many systems share one observer.
type Observer interface {
	// ObserveWALAppend reports the wall time of one op-log line write
	// (excluding the fsync, reported separately).
	ObserveWALAppend(d time.Duration)
	// ObserveWALFsync reports the wall time of one op-log fsync. Only called
	// when fsync is enabled.
	ObserveWALFsync(d time.Duration)
	// ObserveSnapshot reports the wall time of one snapshot file write.
	ObserveSnapshot(d time.Duration)
}
