package syspersist

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hydra/internal/online"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/tasksetio"
)

// Counters aggregates registry activity for /v1/stats: gauges over the live
// systems plus monotone decision counters fed by every hosted system's event
// log (they keep counting for systems that are later deleted). Counters are
// process-lifetime: decisions replayed during recovery are history, not new
// activity, and are not re-counted.
type Counters struct {
	Active        int    `json:"active"`
	Created       uint64 `json:"created"`
	Deleted       uint64 `json:"deleted"`
	Admitted      uint64 `json:"admitted"`
	Rejected      uint64 `json:"rejected"`
	Removed       uint64 `json:"removed"`
	Reallocations uint64 `json:"reallocations"`
	Events        uint64 `json:"events"`
}

func (c *Counters) add(o Counters) {
	c.Active += o.Active
	c.Created += o.Created
	c.Deleted += o.Deleted
	c.Admitted += o.Admitted
	c.Rejected += o.Rejected
	c.Removed += o.Removed
	c.Reallocations += o.Reallocations
	c.Events += o.Events
}

// idPattern restricts caller-chosen system ids to path- and log-safe names —
// doubly important now that the id names a directory on disk.
var idPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ErrSystemExists is returned by Create for an id already in use — a
// conflict with existing state, not a malformed request.
var ErrSystemExists = fmt.Errorf("syspersist: system id already in use")

// ErrRegistryFull is returned by Create when the live-system bound is
// reached; the request is well-formed, capacity is the problem.
var ErrRegistryFull = fmt.Errorf("syspersist: registry full")

// maxShards caps the shard count; shards beyond the hash mask width would be
// unreachable anyway, and 256 independently locked shards already exceed any
// in-process contention this registry can see.
const maxShards = 256

// DefaultShards returns the shard count used when the configuration leaves
// it unset: the next power of two at or above GOMAXPROCS (capped at 256), so
// every processor mutating systems concurrently is unlikely to collide on a
// shard lock.
func DefaultShards() int {
	return normalizeShards(runtime.GOMAXPROCS(0))
}

// normalizeShards rounds n up to a power of two in [1, maxShards]
// (power-of-two counts make shard selection a mask; doubling the count moves
// only the systems whose hash gains the new high bit, linear-hashing style).
func normalizeShards(n int) int {
	if n < 1 {
		n = 1
	}
	s := 1
	for s < n && s < maxShards {
		s <<= 1
	}
	return s
}

// shard is one independently locked slice of the id space, owning its
// systems, its persistence subdirectory and its share of the counters.
type shard struct {
	mu      sync.Mutex
	dir     string
	systems map[string]*DurableSystem

	created, deleted, admitted, rejected, removed, realloc, events uint64
}

// countEvent folds one system event into the shard counters. It is called
// under the emitting system's lock; it takes only the shard lock (lock
// order: system before shard, never the reverse).
func (sh *shard) countEvent(e online.Event) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.events++
	switch e.Type {
	case online.EventAdmit:
		sh.admitted++
	case online.EventReject:
		sh.rejected++
	case online.EventRemove:
		sh.removed++
	case online.EventReallocate:
		sh.realloc++
	}
}

// Options tunes a Registry.
type Options struct {
	// Dir is the persistence root; each shard owns a shard-<k> subdirectory.
	// Empty selects a fresh temporary directory (systems then do not survive
	// the process — the ephemeral mode the pre-durability registry offered).
	Dir string
	// Shards is the shard count, rounded up to a power of two in [1, 256].
	// Zero or negative selects DefaultShards.
	Shards int
	// MaxSystems bounds the live systems across all shards, exactly. Zero or
	// negative selects 64.
	MaxSystems int
	// SnapshotEvery is the op count between per-system snapshots. Zero or
	// negative selects 64.
	SnapshotEvery int
	// Fsync forces every op-log append to stable storage before the mutation
	// is acknowledged. Off by default: the admit path stays in the page
	// cache, and a kernel crash (not a process crash) can lose the tail.
	Fsync bool
	// Observer, when non-nil, receives append/fsync/snapshot latencies from
	// every system's store. Nil keeps the persistence paths clock-free.
	Observer Observer
}

// Registry hosts the durable systems of one server process, sharded by
// consistent hash of the system id. Create with Open, which also recovers
// every system found under the directory — including systems persisted under
// a different shard count, which are rehomed to their current shard first.
type Registry struct {
	dir    string
	fsync  bool
	obs    Observer
	every  int
	max    int
	mask   uint32
	shards []*shard
	// live counts live systems plus in-flight creations, globally, so the
	// MaxSystems bound stays exact however the ids hash across shards.
	live atomic.Int64
}

// shardOf selects a system's home shard: FNV-1a of the id, masked. The
// assignment is a pure function of (id, shard count), so every replica — and
// every restart — agrees on it.
func (r *Registry) shardOf(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return r.shards[h.Sum32()&r.mask]
}

// Open builds the registry and recovers every persisted system under
// opts.Dir. Systems sitting in a shard directory that is no longer their
// home (the shard count changed across restarts) are moved before recovery;
// shard directories left empty by the move are pruned.
func Open(opts Options) (*Registry, error) {
	dir := opts.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "hydra-systems-*")
		if err != nil {
			return nil, err
		}
		dir = tmp
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = normalizeShards(shards)
	max := opts.MaxSystems
	if max <= 0 {
		max = 64
	}
	every := opts.SnapshotEvery
	if every <= 0 {
		every = 64
	}
	r := &Registry{
		dir:    dir,
		fsync:  opts.Fsync,
		obs:    opts.Observer,
		every:  every,
		max:    max,
		mask:   uint32(shards - 1),
		shards: make([]*shard, shards),
	}
	for k := range r.shards {
		r.shards[k] = &shard{
			dir:     filepath.Join(dir, fmt.Sprintf("shard-%d", k)),
			systems: map[string]*DurableSystem{},
		}
		if err := os.MkdirAll(r.shards[k].dir, 0o755); err != nil {
			return nil, err
		}
	}
	if err := r.recoverAll(); err != nil {
		return nil, err
	}
	return r, nil
}

// recoverAll scans every shard-* directory (current count or not), rehomes
// systems whose hash home changed, and replays each into memory.
func (r *Registry) recoverAll() error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		shardDir := filepath.Join(r.dir, e.Name())
		systems, err := os.ReadDir(shardDir)
		if err != nil {
			return err
		}
		for _, se := range systems {
			if !se.IsDir() {
				continue
			}
			id := se.Name()
			home := r.shardOf(id)
			src := filepath.Join(shardDir, id)
			dst := filepath.Join(home.dir, id)
			if src != dst {
				if err := os.Rename(src, dst); err != nil {
					return fmt.Errorf("syspersist: rehome %s: %w", id, err)
				}
			}
			ds, err := Recover(dst, r.every, r.fsync, r.obs)
			if err != nil {
				return fmt.Errorf("syspersist: recover %s: %w", id, err)
			}
			if got := ds.ID(); got != id {
				return fmt.Errorf("syspersist: directory %s holds manifest for id %q", dst, got)
			}
			// Attach the counter sink only after replay: replayed decisions
			// are a previous life's activity, already counted then.
			ds.sys.SetEventSink(home.countEvent)
			home.systems[id] = ds
			r.live.Add(1)
		}
		// Prune shard dirs from a larger previous count once emptied.
		if shardDir != r.shards[r.shardIndexOfDir(e.Name())].dir {
			_ = os.Remove(shardDir) // fails (harmlessly) unless empty
		}
	}
	return nil
}

// shardIndexOfDir maps a shard-<k> name onto the current shard array (k
// beyond the count folds onto the mask so the comparison in recoverAll holds
// exactly for current directories).
func (r *Registry) shardIndexOfDir(name string) uint32 {
	var k uint32
	_, _ = fmt.Sscanf(name, "shard-%d", &k)
	return k & r.mask
}

// Dir returns the persistence root.
func (r *Registry) Dir() string { return r.dir }

// Shards returns the shard count.
func (r *Registry) Shards() int { return len(r.shards) }

// Create builds a new durable system: the cold allocation runs first (no
// disk state for infeasible tasksets), then the manifest is written and the
// op log opened, and only then is the system visible. An empty id draws a
// random one; a caller-chosen id must match [a-zA-Z0-9._-]{1,64} (starting
// alphanumeric) and be unused. reallocateAfter sets the system's
// auto-reallocate policy (0 = off).
func (r *Registry) Create(id, scheme string, h partition.Heuristic, m int, rt []rts.RTTask, part []int, sec []rts.SecurityTask, reallocateAfter int) (*DurableSystem, error) {
	if id == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, err
		}
		id = hex.EncodeToString(b[:])
	} else if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("syspersist: invalid system id %q (want 1-64 chars of [a-zA-Z0-9._-], starting alphanumeric)", id)
	}
	// Reserve a slot in the global bound before anything else: the count is
	// exact across shards because every path through creation either keeps
	// the slot (success) or returns it (any failure).
	if r.live.Add(1) > int64(r.max) {
		r.live.Add(-1)
		return nil, fmt.Errorf("%w (%d systems); delete one first", ErrRegistryFull, r.max)
	}
	sh := r.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.systems[id]; dup {
		sh.mu.Unlock()
		r.live.Add(-1)
		return nil, fmt.Errorf("%w: %q", ErrSystemExists, id)
	}
	// Reserve the id while the (lock-free) cold allocation runs.
	sh.systems[id] = nil
	sh.mu.Unlock()

	ds, err := r.buildSystem(sh, id, scheme, h, m, rt, part, sec, reallocateAfter)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err != nil {
		delete(sh.systems, id)
		r.live.Add(-1)
		return nil, err
	}
	ds.sys.SetEventSink(sh.countEvent)
	sh.events++ // NewSystem logged its create event before the sink was attached
	sh.systems[id] = ds
	sh.created++
	return ds, nil
}

// buildSystem runs the cold allocation and initializes the on-disk store; no
// locks are held.
func (r *Registry) buildSystem(sh *shard, id, scheme string, h partition.Heuristic, m int, rt []rts.RTTask, part []int, sec []rts.SecurityTask, reallocateAfter int) (*DurableSystem, error) {
	sys, err := online.NewSystem(id, scheme, h, m, rt, part, sec)
	if err != nil {
		return nil, err
	}
	if reallocateAfter < 0 {
		reallocateAfter = 0
	}
	sys.SetReallocateAfter(reallocateAfter)
	man := Manifest{
		ID:              id,
		Scheme:          sys.Scheme(),
		Heuristic:       sys.Heuristic().String(),
		Cores:           m,
		ReallocateAfter: reallocateAfter,
		RTTasks:         []tasksetio.RTTaskJSON{},
		RTPartition:     part,
		SecurityTasks:   []tasksetio.SecurityTaskJSON{},
	}
	for _, t := range rt {
		man.RTTasks = append(man.RTTasks, rtToJSON(t))
	}
	for _, t := range sec {
		man.SecurityTasks = append(man.SecurityTasks, secToJSON(t))
	}
	dir := filepath.Join(sh.dir, id)
	store, err := CreateStore(dir, man, r.fsync, r.obs)
	if err != nil {
		_ = os.RemoveAll(dir)
		return nil, err
	}
	return &DurableSystem{sys: sys, store: store, every: r.every}, nil
}

// Get returns the system with the given id.
func (r *Registry) Get(id string) (*DurableSystem, bool) {
	sh := r.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ds, ok := sh.systems[id]
	if ds == nil {
		return nil, false // reserved id mid-creation counts as absent
	}
	return ds, ok
}

// Delete removes a system from the registry and erases its persistence
// directory (a deleted system must not resurrect on the next recovery). Its
// in-flight operations finish or fail with ErrClosed; watchers of its event
// stream observe no further events.
func (r *Registry) Delete(id string) bool {
	sh := r.shardOf(id)
	sh.mu.Lock()
	ds, ok := sh.systems[id]
	if !ok || ds == nil {
		sh.mu.Unlock()
		return false
	}
	delete(sh.systems, id)
	sh.deleted++
	sh.mu.Unlock()
	// Outside sh.mu: the lock order is system before shard (countEvent),
	// never the reverse.
	r.live.Add(-1)
	_ = ds.close()
	_ = os.RemoveAll(ds.Dir())
	return true
}

// List returns the live systems sorted by id.
func (r *Registry) List() []*DurableSystem {
	var out []*DurableSystem
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, ds := range sh.systems {
			if ds != nil {
				out = append(out, ds)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID() < out[b].ID() })
	return out
}

// Counters aggregates the per-shard counters losslessly: each shard's
// counters are read under its own lock, so every counted event lands in
// exactly one shard total and the sum never double- or under-counts.
func (r *Registry) Counters() Counters {
	var total Counters
	for _, sh := range r.shards {
		sh.mu.Lock()
		active := 0
		for _, ds := range sh.systems {
			if ds != nil {
				active++
			}
		}
		total.add(Counters{
			Active:        active,
			Created:       sh.created,
			Deleted:       sh.deleted,
			Admitted:      sh.admitted,
			Rejected:      sh.rejected,
			Removed:       sh.removed,
			Reallocations: sh.realloc,
			Events:        sh.events,
		})
		sh.mu.Unlock()
	}
	return total
}

// Rebalance moves a system onto its current home shard by the failover
// recipe: close its store, relocate the directory, and replay the log into a
// fresh instance — the exact path a real shard handoff would take, so the
// rebuilt system is decision-identical to the one it replaces. The previous
// *DurableSystem turns inert (mutations return ErrClosed); clients re-resolve
// the id. Rebalancing a system already on its home shard is a close+replay in
// place, which is how the tests pin replay byte-identity.
func (r *Registry) Rebalance(id string) (*DurableSystem, error) {
	sh := r.shardOf(id)
	sh.mu.Lock()
	ds, ok := sh.systems[id]
	if !ok || ds == nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("syspersist: no such system %q", id)
	}
	// Keep the id reserved (nil) so a concurrent Create cannot take it while
	// the system is offline for replay.
	sh.systems[id] = nil
	sh.mu.Unlock()

	reinstate := func(v *DurableSystem) {
		sh.mu.Lock()
		sh.systems[id] = v
		sh.mu.Unlock()
	}
	if err := ds.close(); err != nil {
		reinstate(ds)
		return nil, err
	}
	dst := filepath.Join(sh.dir, id)
	if ds.Dir() != dst {
		if err := os.Rename(ds.Dir(), dst); err != nil {
			reinstate(ds)
			return nil, fmt.Errorf("syspersist: rebalance %s: %w", id, err)
		}
	}
	fresh, err := Recover(dst, r.every, r.fsync, r.obs)
	if err != nil {
		reinstate(ds)
		return nil, err
	}
	fresh.sys.SetEventSink(sh.countEvent)
	reinstate(fresh)
	return fresh, nil
}

// Close flushes a final snapshot for every system (so the next recovery
// replays nothing) and closes the op logs. The registry must not be used
// afterwards.
func (r *Registry) Close() {
	for _, sh := range r.shards {
		sh.mu.Lock()
		systems := make([]*DurableSystem, 0, len(sh.systems))
		for _, ds := range sh.systems {
			if ds != nil {
				systems = append(systems, ds)
			}
		}
		sh.mu.Unlock()
		for _, ds := range systems {
			_ = ds.Flush()
			_ = ds.close()
		}
	}
}
