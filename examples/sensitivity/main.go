// Sensitivity analysis: the paper notes that an unschedulability verdict
// "will provide hints to the designers to update the parameters of security
// tasks" (Sec. III-B). This example shows that workflow on the avionics
// workload:
//
//  1. measure the platform's security headroom (breakdown WCET scale);
//  2. overload it deliberately, observe the unschedulable verdict;
//  3. ask the library for the minimal Tmax relaxation that restores
//     feasibility, and inspect the per-core slack left afterwards.
//
// Run with:
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/workloads"
)

func main() {
	w, err := workloads.Get("avionics")
	if err != nil {
		log.Fatal(err)
	}
	const m = 2
	part, err := core.PartitionForHydra(w.RT, m, partition.BestFit)
	if err != nil {
		log.Fatal(err)
	}
	in, err := core.NewInput(m, w.RT, part, w.Sec)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Headroom: how much heavier could every security scan get?
	k, err := core.BreakdownSecurityScale(in, core.HydraOptions{}, 32, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("avionics workload on %d cores\n", m)
	fmt.Printf("1. breakdown security-WCET scale: %.2fx (every scan could grow %.0f%% before HYDRA fails)\n\n",
		k, (k-1)*100)

	// 2. Deliberate overload: double WCETs beyond the breakdown point and
	// tighten Tmax so period adaptation has no room.
	over := make([]rts.SecurityTask, len(w.Sec))
	for i, s := range w.Sec {
		over[i] = s
		over[i].C = s.C * (k + 1)
		over[i].TMax = s.TDes * 1.2
		if over[i].C > over[i].TDes {
			over[i].C = over[i].TDes * 0.9
		}
	}
	overIn, err := core.NewInput(m, w.RT, part, over)
	if err != nil {
		log.Fatal(err)
	}
	res := core.Hydra(overIn, core.HydraOptions{})
	fmt.Printf("2. overloaded variant: schedulable=%v\n", res.Schedulable)
	if !res.Schedulable {
		fmt.Printf("   verdict: %s\n\n", res.Reason)
	}

	// 3. Designer hint: minimal uniform Tmax relaxation.
	rel, ok, err := core.SuggestTMaxRelaxation(overIn, core.HydraOptions{}, 64, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("3. no Tmax relaxation up to 64x restores feasibility —")
		fmt.Println("   the security WCETs themselves must shrink (or add cores).")
	} else {
		fmt.Printf("3. minimal Tmax relaxation: %.2fx restores schedulability\n", rel.TMaxFactor)
		fmt.Printf("   resulting cumulative tightness: %.3f\n", rel.Result.Cumulative)
		slack, err := core.SecuritySlack(overInWithTMax(overIn, rel.TMaxFactor), rel.Result)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   remaining per-core utilization slack: %v\n", fmtSlack(slack))
	}
}

// overInWithTMax clones the input with every security TMax scaled.
func overInWithTMax(in *core.Input, f float64) *core.Input {
	sec := make([]rts.SecurityTask, len(in.Sec))
	for i, s := range in.Sec {
		sec[i] = s
		sec[i].TMax = s.TMax * f
	}
	out, err := core.NewInput(in.M, in.RT, in.RTPartition, sec)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func fmtSlack(s []float64) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[i] = fmt.Sprintf("%.2f", v)
	}
	return out
}
