// Design-space exploration: the decisions a system designer faces when
// retrofitting security tasks into a multicore RTS, explored with this
// library on synthetic workloads (paper Sec. IV-B parameters):
//
//  1. core-commitment policy ablation (HYDRA best-tightness vs first-feasible
//     vs least-loaded);
//  2. real-time partition heuristic ablation (first/best/worst/next-fit);
//  3. the Sec. V extensions: non-preemptive security execution cost, and
//     runtime slack reclamation (migrating security jobs) vs static HYDRA
//     pinning, measured as intrusion-detection latency on the UAV case study.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/detect"
	"hydra/internal/experiments"
	"hydra/internal/partition"
	"hydra/internal/sim"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
	"hydra/internal/uav"
)

const (
	m            = 4
	tasksetCount = 150
	seed         = 2024
)

func main() {
	policyAblation()
	heuristicAblation()
	nonPreemptiveCost()
	slackReclamation()
}

// policyAblation compares allocation schemes — selected by name from the
// allocator registry — by acceptance ratio and cumulative tightness at a
// demanding utilization. Besides HYDRA's three commitment policies it
// includes the no-period-adaptation bin-packing baseline, quantifying what
// the paper's period adaptation buys.
func policyAblation() {
	fmt.Printf("1. Allocation-scheme ablation (%d cores, U=0.85M, %d tasksets)\n", m, tasksetCount)
	schemes, err := core.Resolve(
		"hydra", "hydra-first-feasible", "hydra-least-loaded", "partition-best-fit")
	if err != nil {
		log.Fatal(err)
	}
	accepted := make([]int, len(schemes))
	tightness := make([]float64, len(schemes))
	total := 0
	for t := 0; t < tasksetCount; t++ {
		rng := stats.SplitRNG(seed, int64(t))
		w, err := taskgen.Generate(taskgen.DefaultParams(m, 0.85*m), rng)
		if err != nil {
			continue
		}
		part, err := partition.PartitionRT(w.RT, m, partition.BestFit)
		if err != nil {
			continue
		}
		in, err := core.NewInput(m, w.RT, part.CoreOf, w.Sec)
		if err != nil {
			log.Fatal(err)
		}
		total++
		for si, scheme := range schemes {
			r := scheme.Allocate(in)
			if r.Schedulable {
				accepted[si]++
				tightness[si] += r.Cumulative / float64(len(w.Sec))
			}
		}
	}
	for si, scheme := range schemes {
		mean := 0.0
		if accepted[si] > 0 {
			mean = tightness[si] / float64(accepted[si])
		}
		fmt.Printf("   %-22s acceptance %5.1f%%   mean per-task tightness %.3f\n",
			scheme.Name(), 100*float64(accepted[si])/float64(total), mean)
	}
	fmt.Println()
}

// heuristicAblation shows how the *real-time* partition heuristic changes
// the security headroom HYDRA finds.
func heuristicAblation() {
	fmt.Printf("2. RT-partition heuristic ablation (%d cores, U=0.8M, %d tasksets)\n", m, tasksetCount)
	heuristics := []partition.Heuristic{partition.FirstFit, partition.BestFit, partition.WorstFit, partition.NextFit}
	for _, h := range heuristics {
		accepted, total := 0, 0
		sumTight := 0.0
		for t := 0; t < tasksetCount; t++ {
			rng := stats.SplitRNG(seed+1, int64(t))
			w, err := taskgen.Generate(taskgen.DefaultParams(m, 0.8*m), rng)
			if err != nil {
				continue
			}
			total++
			part, err := partition.PartitionRT(w.RT, m, h)
			if err != nil {
				continue
			}
			in, err := core.NewInput(m, w.RT, part.CoreOf, w.Sec)
			if err != nil {
				log.Fatal(err)
			}
			if r := core.Hydra(in, core.HydraOptions{}); r.Schedulable {
				accepted++
				sumTight += r.Cumulative / float64(len(w.Sec))
			}
		}
		mean := 0.0
		if accepted > 0 {
			mean = sumTight / float64(accepted)
		}
		fmt.Printf("   %-10s acceptance %5.1f%%   mean per-task tightness %.3f\n",
			h, 100*float64(accepted)/float64(total), mean)
	}
	fmt.Println()
}

// nonPreemptiveCost quantifies what non-preemptive security execution
// (Sec. V) costs in tightness on the UAV workload.
func nonPreemptiveCost() {
	fmt.Println("3. Non-preemptive security execution (UAV workload, 2 cores)")
	rt := uav.RTTasks()
	sec := uav.SecurityTaskSet()
	part, err := core.PartitionForHydra(rt, 2, partition.BestFit)
	if err != nil {
		log.Fatal(err)
	}
	in, err := core.NewInput(2, rt, part, sec)
	if err != nil {
		log.Fatal(err)
	}
	plain := core.Hydra(in, core.HydraOptions{})
	np := core.HydraExt(in, core.ExtOptions{NonPreemptiveSecurity: true})
	fmt.Printf("   preemptive:     cumulative tightness %.3f\n", plain.Cumulative)
	if np.Schedulable {
		fmt.Printf("   non-preemptive: cumulative tightness %.3f (blocking cost %.1f%%)\n",
			np.Cumulative, 100*(plain.Cumulative-np.Cumulative)/plain.Cumulative)
	} else {
		fmt.Printf("   non-preemptive: unschedulable (%s)\n", np.Reason)
	}

	// Precedence: Tripwire must verify its own binary before the system
	// binaries and libraries (indices: 0 = tw-own-binary, 1 = tw-executables,
	// 2 = tw-libraries in the Table-I order).
	chain := core.HydraExt(in, core.ExtOptions{Chains: [][]int{{0, 1}, {0, 2}}})
	if !chain.Schedulable {
		log.Fatalf("chained allocation failed: %s", chain.Reason)
	}
	fmt.Printf("   with tw-own-binary precedence chains: tightness %.3f, shared core %d\n\n",
		chain.Cumulative, chain.Assignment[0])
	if chain.Assignment[1] != chain.Assignment[0] || chain.Assignment[2] != chain.Assignment[0] {
		log.Fatal("chain members must share the predecessor's core")
	}
}

// slackReclamation compares the detection latency of HYDRA's static pinning
// against the runtime slack-reclamation mode (security jobs migrate to any
// idle core) on the UAV case study.
func slackReclamation() {
	fmt.Println("4. Runtime slack reclamation vs static HYDRA pinning (UAV, 2 cores)")
	rt := uav.RTTasks()
	sec := uav.SecurityTaskSet()
	part, err := core.PartitionForHydra(rt, 2, partition.BestFit)
	if err != nil {
		log.Fatal(err)
	}
	in, err := core.NewInput(2, rt, part, sec)
	if err != nil {
		log.Fatal(err)
	}
	res := core.Hydra(in, core.HydraOptions{})
	if !res.Schedulable {
		log.Fatalf("HYDRA failed: %s", res.Reason)
	}
	const horizon = 500_000.0
	perCore, taskCore, taskIndex, err := experiments.BuildSimSpecs(in, res)
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.SplitRNG(seed+2, 0)
	attacks := detect.SampleAttacks(rng, 2000, len(sec), horizon, 0.8)

	// Static pinning.
	pinnedTrace, err := sim.SimulateSystem(perCore, horizon)
	if err != nil {
		log.Fatal(err)
	}
	pinnedCampaign, err := detect.NewCampaign(pinnedTrace, taskCore, taskIndex)
	if err != nil {
		log.Fatal(err)
	}
	pinnedDet, err := pinnedCampaign.Run(attacks)
	if err != nil {
		log.Fatal(err)
	}
	pinnedMean := stats.NewECDF(detect.Latencies(pinnedDet)).Mean()

	// Slack reclamation: same adapted periods, but jobs may migrate. Build
	// RT-only per-core lists plus a global security list.
	rtPerCore := make([][]sim.TaskSpec, in.M)
	var secSpecs []sim.TaskSpec
	secCampaignCore := make([]int, len(sec))
	secCampaignIndex := make([]int, len(sec))
	for c, specs := range perCore {
		for _, sp := range specs {
			if sp.Kind == sim.KindRT {
				rtPerCore[c] = append(rtPerCore[c], sp)
			}
		}
		_ = c
	}
	for i := range sec {
		sp := perCore[taskCore[i]][taskIndex[i]]
		secCampaignCore[i] = in.M // virtual security trace index
		secCampaignIndex[i] = len(secSpecs)
		secSpecs = append(secSpecs, sp)
	}
	globalTrace, err := sim.SimulateGlobalSlack(rtPerCore, secSpecs, horizon)
	if err != nil {
		log.Fatal(err)
	}
	globalCampaign, err := detect.NewCampaign(globalTrace, secCampaignCore, secCampaignIndex)
	if err != nil {
		log.Fatal(err)
	}
	globalDet, err := globalCampaign.Run(attacks)
	if err != nil {
		log.Fatal(err)
	}
	globalMean := stats.NewECDF(detect.Latencies(globalDet)).Mean()

	fmt.Printf("   static pinning:    mean detection %8.0f ms\n", pinnedMean)
	fmt.Printf("   slack reclamation: mean detection %8.0f ms (%.1f%% faster)\n",
		globalMean, 100*(pinnedMean-globalMean)/pinnedMean)
	fmt.Printf("   RT deadline misses: pinned %d, global %d (both must be 0)\n",
		rtMisses(pinnedTrace, in.M), rtMisses(globalTrace, in.M))
}

// rtMisses counts deadline misses on the real cores only (the virtual
// security trace in global mode may legitimately stretch).
func rtMisses(st *sim.SystemTrace, m int) int {
	n := 0
	for c := 0; c < m && c < len(st.Cores); c++ {
		n += st.Cores[c].Misses
	}
	return n
}
