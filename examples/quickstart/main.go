// Quickstart: allocate two security tasks onto a 2-core real-time system
// with HYDRA and print the resulting cores, periods and tightness.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/partition"
	"hydra/internal/rts"
)

func main() {
	// 1. The existing real-time workload (immutable: HYDRA never changes it).
	rtTasks := []rts.RTTask{
		rts.NewRTTask("sensor-fusion", 5, 20),   // 25% utilization
		rts.NewRTTask("control-loop", 10, 50),   // 20%
		rts.NewRTTask("telemetry", 20, 200),     // 10%
		rts.NewRTTask("housekeeping", 50, 1000), // 5%
	}

	// 2. The security tasks to retrofit: WCET, desired period, max period.
	secTasks := []rts.SecurityTask{
		{Name: "integrity-check", C: 120, TDes: 2000, TMax: 20000},
		{Name: "net-monitor", C: 80, TDes: 1000, TMax: 10000},
	}

	// 3. Partition the real-time tasks across the cores (best-fit, as in the
	// paper) — in a retrofit scenario this assignment already exists.
	const m = 2
	rtPartition, err := core.PartitionForHydra(rtTasks, m, partition.BestFit)
	if err != nil {
		log.Fatalf("real-time tasks are not schedulable on %d cores: %v", m, err)
	}

	// 4. Run HYDRA (Algorithm 1).
	in, err := core.NewInput(m, rtTasks, rtPartition, secTasks)
	if err != nil {
		log.Fatal(err)
	}
	res := core.Hydra(in, core.HydraOptions{})
	if !res.Schedulable {
		log.Fatalf("no feasible allocation: %s", res.Reason)
	}
	if err := core.Verify(in, res); err != nil {
		log.Fatalf("allocation failed verification: %v", err)
	}

	// 5. Inspect the result.
	fmt.Printf("cumulative tightness: %.3f (1.0 per task = every desired period met)\n\n", res.Cumulative)
	for i, s := range secTasks {
		fmt.Printf("%-16s -> core %d, period %6.0f ms (desired %5.0f, tightness %.2f)\n",
			s.Name, res.Assignment[i], res.Periods[i], s.TDes, res.Tightness[i])
	}

	// 6. Compare against dedicating one core to security (SingleCore).
	sc := core.SingleCore(m, rtTasks, secTasks, partition.BestFit)
	if sc.Schedulable {
		fmt.Printf("\nSingleCore baseline cumulative tightness: %.3f\n", sc.Cumulative)
	} else {
		fmt.Printf("\nSingleCore baseline: unschedulable (%s)\n", sc.Reason)
	}
}
