// UAV case study (paper Sec. IV-A / Fig. 1): allocate the Tripwire + Bro
// security workload onto the UAV control system with HYDRA and SingleCore,
// simulate 500 s of the schedule, inject random attacks, and report
// detection-time statistics and the empirical CDF.
//
// Run with:
//
//	go run ./examples/uav
package main

import (
	"fmt"
	"log"
	"strings"

	"hydra/internal/experiments"
)

func main() {
	res, err := experiments.RunFig1(experiments.Fig1Config{
		Cores:     []int{2, 4, 8},
		Attacks:   2000,
		Seed:      42,
		CDFPoints: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("UAV case study: worst-case intrusion detection time, HYDRA vs SingleCore")
	fmt.Println(strings.Repeat("=", 74))
	for _, row := range res.Rows {
		hydra, single := row.Schemes[0], row.Schemes[1]
		fmt.Printf("\n%d cores:\n", row.M)
		fmt.Printf("  mean detection  HYDRA %8.0f ms   SingleCore %8.0f ms   -> %.2f%% faster\n",
			hydra.MeanDetection, single.MeanDetection, row.ImprovementPct)
		fmt.Printf("  90th percentile HYDRA %8.0f ms   SingleCore %8.0f ms\n",
			hydra.ECDF.Quantile(0.9), single.ECDF.Quantile(0.9))
		fmt.Printf("  deadline misses HYDRA %8d      SingleCore %8d (must be 0)\n",
			hydra.Misses, single.Misses)

		fmt.Println("  empirical CDF (detection ms -> probability):")
		fmt.Print("    time:   ")
		for _, pt := range hydra.Series {
			fmt.Printf("%7.0f", pt[0])
		}
		fmt.Print("\n    HYDRA:  ")
		for _, pt := range hydra.Series {
			fmt.Printf("%7.2f", pt[1])
		}
		fmt.Print("\n    Single: ")
		for _, pt := range single.Series {
			fmt.Printf("%7.2f", pt[1])
		}
		fmt.Println()

		fmt.Println("  HYDRA allocation:")
		alloc := hydra.Allocation
		for i, p := range alloc.Periods {
			fmt.Printf("    task %d -> core %d, period %6.0f ms (tightness %.2f)\n",
				i, alloc.Assignment[i], p, alloc.Tightness[i])
		}
	}
	fmt.Println("\nPaper reference: ~19.8% / 27.2% / 29.8% faster mean detection at 2/4/8 cores.")
}
