// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md. Each figure bench runs a scaled-down but shape-preserving
// version of the experiment and reports the headline metric through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the paper's
// qualitative results alongside cost numbers.
package hydra_test

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/experiments"
	"hydra/internal/partition"
	"hydra/internal/rts"
	"hydra/internal/sim"
	"hydra/internal/stats"
	"hydra/internal/taskgen"
	"hydra/internal/uav"
)

// BenchmarkTable1SecurityTasks regenerates Table I (the security-task
// inventory); the metric is the number of tasks rendered.
func BenchmarkTable1SecurityTasks(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table1())
		if experiments.FormatTable1() == "" {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(float64(rows), "tasks")
}

// BenchmarkFig1DetectionCDF regenerates Fig. 1 at reduced scale (2 and 4
// cores, 60 s window, 200 attacks) and reports HYDRA's mean detection-time
// improvement over SingleCore (the paper reports 19.8–29.8 % at full scale).
func BenchmarkFig1DetectionCDF(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(experiments.Fig1Config{
			Cores: []int{2, 4}, Horizon: 60_000, Attacks: 200, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		improvement = 0
		for _, row := range res.Rows {
			improvement += row.ImprovementPct
		}
		improvement /= float64(len(res.Rows))
	}
	b.ReportMetric(improvement, "improvement_%")
}

// BenchmarkFig2AcceptanceRatio regenerates one Fig. 2 subplot (M = 2) at
// reduced sampling and reports the mean acceptance-ratio improvement across
// the utilization sweep.
func BenchmarkFig2AcceptanceRatio(b *testing.B) {
	var meanImp float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig2(experiments.Fig2Config{
			M: 2, TasksetsPerPoint: 20, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		meanImp = 0
		for _, p := range pts {
			meanImp += p.ImprovementPct
		}
		meanImp /= float64(len(pts))
	}
	b.ReportMetric(meanImp, "mean_improvement_%")
}

// BenchmarkFig3OptimalGap regenerates Fig. 3 at reduced sampling and reports
// the maximum mean tightness gap across utilization levels (paper: <= 22 %).
func BenchmarkFig3OptimalGap(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig3(experiments.Fig3Config{
			TasksetsPerPoint: 10, UtilStepFrac: 0.1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range pts {
			if p.MeanGapPct > worst {
				worst = p.MeanGapPct
			}
		}
	}
	b.ReportMetric(worst, "max_mean_gap_%")
}

// benchWorkload draws a fixed mid-utilization 4-core workload.
func benchWorkload(b *testing.B, seed int64) (*core.Input, *taskgen.Workload) {
	b.Helper()
	rng := stats.SplitRNG(seed, 0)
	w, err := taskgen.Generate(taskgen.DefaultParams(4, 2.4), rng)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.PartitionRT(w.RT, 4, partition.BestFit)
	if err != nil {
		b.Fatal(err)
	}
	in, err := core.NewInput(4, w.RT, part.CoreOf, w.Sec)
	if err != nil {
		b.Fatal(err)
	}
	return in, w
}

// BenchmarkHydraAllocation measures the cost of one HYDRA run (Algorithm 1,
// closed-form period adaptation) on a 4-core synthetic workload.
func BenchmarkHydraAllocation(b *testing.B) {
	in, _ := benchWorkload(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := core.Hydra(in, core.HydraOptions{}); !r.Schedulable {
			b.Fatal(r.Reason)
		}
	}
}

// BenchmarkAllocatorHotPath measures the end-to-end allocation hot path per
// scheme: RT partitioning with incremental-RTA admission, allocation on a
// fresh Input (so per-Input caches are rebuilt, as a cold serving request
// would), and linear verification — the work a cold /v1/allocate performs
// behind the JSON/HTTP layers. Tracked by the benchjson -compare CI gate so
// the incremental schedulability-state speedup stays locked in.
func BenchmarkAllocatorHotPath(b *testing.B) {
	rng := stats.SplitRNG(41, 0)
	w, err := taskgen.Generate(taskgen.DefaultParams(4, 2.4), rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, scheme := range []string{"hydra", "hydra-least-loaded", "hydra-np", "singlecore", "partition-best-fit"} {
		alloc := core.MustLookup(scheme)
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			accepted := 0
			for i := 0; i < b.N; i++ {
				part, err := partition.PartitionRT(w.RT, 4, partition.BestFit)
				if err != nil {
					b.Fatal(err)
				}
				in, err := core.NewInput(4, w.RT, part.CoreOf, w.Sec)
				if err != nil {
					b.Fatal(err)
				}
				r := alloc.Allocate(in)
				if r.Schedulable {
					accepted++
					if err := core.Verify(in, r); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(accepted)/float64(b.N), "accept_ratio")
		})
	}
}

// BenchmarkAblationPeriodAdaptation compares the closed form against the
// GP-solver route for the same period-adaptation subproblem — the ablation
// for the paper's Appendix reformulation.
func BenchmarkAblationPeriodAdaptation(b *testing.B) {
	s := rts.SecurityTask{Name: "s", C: 50, TDes: 1000, TMax: 10000}
	load := rts.CoreLoad{SumC: 120, SumU: 0.55}
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := core.PeriodAdaptation(s, load); !ok {
				b.Fatal("infeasible")
			}
		}
	})
	b.Run("gp-solver", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := core.PeriodAdaptationGP(s, load); !ok {
				b.Fatal("infeasible")
			}
		}
	})
}

// BenchmarkAblationAllocHeuristics compares HYDRA's commitment policies.
func BenchmarkAblationAllocHeuristics(b *testing.B) {
	in, _ := benchWorkload(b, 11)
	for _, pol := range []core.Policy{core.BestTightness, core.FirstFeasible, core.LeastLoaded} {
		b.Run(pol.String(), func(b *testing.B) {
			var cum float64
			for i := 0; i < b.N; i++ {
				r := core.Hydra(in, core.HydraOptions{Policy: pol})
				if !r.Schedulable {
					b.Fatal(r.Reason)
				}
				cum = r.Cumulative
			}
			b.ReportMetric(cum, "cum_tightness")
		})
	}
}

// BenchmarkAblationRTPartition compares the downstream effect of the four
// real-time partition heuristics on HYDRA's cumulative tightness.
func BenchmarkAblationRTPartition(b *testing.B) {
	rng := stats.SplitRNG(13, 0)
	w, err := taskgen.Generate(taskgen.DefaultParams(4, 2.4), rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []partition.Heuristic{partition.FirstFit, partition.BestFit, partition.WorstFit, partition.NextFit} {
		b.Run(h.String(), func(b *testing.B) {
			var cum float64
			for i := 0; i < b.N; i++ {
				part, err := partition.PartitionRT(w.RT, 4, h)
				if err != nil {
					b.Skip("heuristic cannot partition this draw")
				}
				in, err := core.NewInput(4, w.RT, part.CoreOf, w.Sec)
				if err != nil {
					b.Fatal(err)
				}
				r := core.Hydra(in, core.HydraOptions{})
				if r.Schedulable {
					cum = r.Cumulative
				}
			}
			b.ReportMetric(cum, "cum_tightness")
		})
	}
}

// BenchmarkAblationOptimalRefinement compares the greedy per-core periods
// against the sequential-GP joint refinement inside the optimal baseline.
func BenchmarkAblationOptimalRefinement(b *testing.B) {
	rng := stats.SplitRNG(17, 0)
	w, err := taskgen.Generate(taskgen.Params{
		M: 2, NR: 6, NS: 4, TotalUtil: 1.6,
		RTPeriodMin: 10, RTPeriodMax: 1000,
		SecTDesMin: 1000, SecTDesMax: 3000,
		TMaxFactor: 10, SecUtilFraction: 0.3, MinTaskUtil: 0.001,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.PartitionRT(w.RT, 2, partition.BestFit)
	if err != nil {
		b.Fatal(err)
	}
	in, err := core.NewInput(2, w.RT, part.CoreOf, w.Sec)
	if err != nil {
		b.Fatal(err)
	}
	for _, refine := range []bool{false, true} {
		name := "greedy"
		if refine {
			name = "sequential-gp"
		}
		b.Run(name, func(b *testing.B) {
			var cum float64
			for i := 0; i < b.N; i++ {
				r := core.Optimal(in, core.OptimalOptions{RefineJointGP: refine})
				if !r.Schedulable {
					b.Skip("instance infeasible")
				}
				cum = r.Cumulative
			}
			b.ReportMetric(cum, "cum_tightness")
		})
	}
}

// BenchmarkUAVCaseStudyAllocation measures HYDRA on the concrete UAV + Table
// I workload across platform sizes.
func BenchmarkUAVCaseStudyAllocation(b *testing.B) {
	rt := uav.RTTasks()
	sec := uav.SecurityTaskSet()
	for _, m := range []int{2, 4, 8} {
		b.Run(coresName(m), func(b *testing.B) {
			part, err := core.PartitionForHydra(rt, m, partition.BestFit)
			if err != nil {
				b.Fatal(err)
			}
			in, err := core.NewInput(m, rt, part, sec)
			if err != nil {
				b.Fatal(err)
			}
			var cum float64
			for i := 0; i < b.N; i++ {
				r := core.Hydra(in, core.HydraOptions{})
				if !r.Schedulable {
					b.Fatal(r.Reason)
				}
				cum = r.Cumulative
			}
			b.ReportMetric(cum, "cum_tightness")
		})
	}
}

func coresName(m int) string {
	return map[int]string{2: "2cores", 4: "4cores", 8: "8cores"}[m]
}

// BenchmarkTasksetGeneration measures the Randfixedsum-based generator.
func BenchmarkTasksetGeneration(b *testing.B) {
	rng := stats.SplitRNG(19, 0)
	p := taskgen.DefaultParams(4, 2.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taskgen.Generate(p, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation500s measures the discrete-event simulator on the UAV
// 2-core configuration over the paper's full 500 s window.
func BenchmarkSimulation500s(b *testing.B) {
	rt := uav.RTTasks()
	sec := uav.SecurityTaskSet()
	part, err := core.PartitionForHydra(rt, 2, partition.BestFit)
	if err != nil {
		b.Fatal(err)
	}
	in, err := core.NewInput(2, rt, part, sec)
	if err != nil {
		b.Fatal(err)
	}
	res := core.Hydra(in, core.HydraOptions{})
	perCore, _, _, err := experiments.BuildSimSpecs(in, res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateSystem(perCore, 500_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactVsLinearVerification compares the cost of the paper's
// linear-bound verification against the exact ceiling-based RTA check.
func BenchmarkExactVsLinearVerification(b *testing.B) {
	in, _ := benchWorkload(b, 23)
	res := core.Hydra(in, core.HydraOptions{})
	if !res.Schedulable {
		b.Fatal(res.Reason)
	}
	b.Run("linear-eq6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := core.Verify(in, res); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-rta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := core.VerifyExact(in, res); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBreakdownAnalysis measures the designer-facing sensitivity tools.
func BenchmarkBreakdownAnalysis(b *testing.B) {
	in, _ := benchWorkload(b, 29)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BreakdownSecurityScale(in, core.HydraOptions{}, 16, 1e-2); err != nil {
			b.Fatal(err)
		}
	}
}
